"""Arena-backed plan executor: run a graph the way a device would.

The reference :class:`~repro.runtime.executor.Executor` evaluates a
graph in topological order with a dict of arrays — correct, but blind
to everything the compiler worked out. :class:`PlanExecutor` instead
executes under a compiled plan:

* kernels run in **schedule order** (the memory-aware order found by
  the scheduler, not the graph's insertion order);
* every activation lives at its planned byte offset inside **one
  preallocated arena** (the :class:`~repro.allocator.arena.AllocationPlan`
  produced by the TFLite-style offset allocators);
* buffer aliasing is honoured physically: an in-place accumulation
  writes over its target's bytes, and a view concat's operands are
  produced directly into their slice of the shared output buffer
  (:class:`~repro.graph.node.MemorySemantics`).

The executor tracks the arena's measured high-water mark while it runs
and raises if it ever exceeds ``AllocationPlan.arena_bytes`` — the
plan's promise is checked on every execution, not assumed. Outputs are
bitwise-identical to the reference executor (same kernels, same
parameters, same float64 compute dtype); the parity suite in
``tests/runtime/test_plan_executor.py`` asserts exactly that across the
whole benchmark suite.

The arena is allocated **once per executor** and reused across ``run()``
calls — that is the paper's deployment model (a fixed, preallocated
footprint serving request after request) and what makes the serving
layer in :mod:`repro.serving` honest. Correctness over stale bytes is
structural: every byte a kernel reads was written earlier in the same
run (inputs are fed, intermediates computed), so no scrub is needed for
parity — the suite proves bitwise-identical outputs across back-to-back
runs over a dirty arena. An explicit ``scrub`` policy is still
available for callers who want defence in depth (``"zero"``) or the
old fresh-allocation behaviour for baselines (``"fresh"``).

Kernels write **directly into their arena site** when they can
(:data:`~repro.runtime.kernels.OUT_KERNELS`: elementwise chains,
concat/flatten/slice copies), eliminating the temporary-plus-copy of
every produced tensor; ops without a destination-write form (convs,
pools, dense) keep the copy fallback. Direct writes are planned at
construction and only enabled where the destination range is disjoint
from — or exactly equal to, for positionwise ops — every input's range,
so aliased layouts can never corrupt an operand mid-kernel.

Batching
--------
``batch_size=N`` makes the executor **batch-native**: the arena becomes
``N`` per-sample rows (a strided ``(N, arena_elems)`` layout), so every
planned byte offset, lifetime and hazard verdict from the per-sample
compilation is reused unchanged — row ``b`` of the batched arena is
exactly the single-sample arena of sample ``b``, and nothing is
re-scheduled. :meth:`run_batch` executes up to ``N`` stacked samples
per step through the batched kernel tables
(:data:`~repro.runtime.kernels.BATCH_KERNELS` /
:data:`~repro.runtime.kernels.BATCH_OUT_KERNELS`), paying NumPy's
per-call dispatch once per node per batch instead of once per node per
sample. A partial batch ``n < N`` runs on the first ``n`` arena rows at
its true size — no padding, no wasted compute. Per-sample results are
bitwise those of :meth:`run` (and therefore of the reference executor);
the batched parity suite asserts that across the benchmark suite.
:meth:`run` itself always executes single-sample on row 0 with the
unbatched kernels, whatever the construction batch size.

Tiered arenas & spilling
------------------------
``spill=SpillPlan`` turns the single arena into a **two-region**
layout: an on-chip *resident* region bounded by the plan's capacity,
plus an off-chip *spill* region holding the home bytes of spilled
buffers (:class:`~repro.allocator.spill.SpillPlan`). The flat step
table gains explicit **fetch** steps (home → staging slot, at every
staging-window entry after the buffer's first write) and **writeback**
steps (staging slot → home, at dirty window exits whose data is needed
again), so off-chip traffic is *executed*, not merely estimated — and
counted per run in :class:`~repro.memsim.hierarchy.TrafficReport`-
compatible units (:meth:`PlanExecutor.traffic_report`). Because fetch
and writeback copy bytes verbatim, outputs stay **bitwise identical**
to the resident execution (and therefore to the reference executor)
under every capacity, solo and batched; batched rows each stage and
move their own bytes, so a batch-``N`` spilled run pays ``N x`` the
per-sample traffic.

Offsets inside a shared buffer
------------------------------
The :class:`~repro.scheduler.memory.BufferModel` says *which* tensors
share a buffer; executing them also needs *where inside it* each tensor
sits. That placement is solved once at construction: aliasing edges
(``intra[u] == intra[target]`` for in-place nodes, ``intra[x_j] ==
intra[view] + sum(bytes(x_0..x_{j-1}))`` for view operands) are
propagated from each buffer's deepest consumer, then bounds-checked
against the buffer extent. Inconsistent aliasing is rejected instead of
silently corrupting memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.allocator.arena import AllocationPlan
from repro.allocator.spill import SpillPlan, StageWindow, step_touches
from repro.exceptions import ExecutionError
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.memsim.hierarchy import TrafficReport
from repro.runtime.executor import Params, init_params
from repro.runtime.kernels import (
    BATCH_KERNELS,
    BATCH_OUT_KERNELS,
    KERNELS,
    OUT_KERNELS,
)
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = [
    "PlanExecutor",
    "PlanExecutionStats",
    "SCRUB_POLICIES",
    "intra_buffer_offsets",
]

#: the reference executor computes in float64; the arena does the same
#: so the two produce bitwise-identical outputs
_EXEC_DTYPE = np.dtype(np.float64)


def _view_operand_offsets(graph: Graph, node: Node) -> list[int]:
    """Byte offset of each input occurrence inside a view node's output.

    View concats stack their operands along axis 0 of a C-contiguous
    tensor, so operand *j* starts at the summed bytes of operands
    ``0..j-1`` (aliased or not — copied operands still occupy their
    slice of the layout).
    """
    offsets: list[int] = []
    cursor = 0
    for src in node.inputs:
        offsets.append(cursor)
        cursor += graph.node(src).output.bytes
    return offsets


def intra_buffer_offsets(graph: Graph, model: BufferModel) -> dict[str, int]:
    """Byte offset of every node's tensor *within* its shared buffer.

    Plain (non-aliasing, non-aliased) tensors sit at offset 0 of their
    own buffer. Aliasing constraints are propagated from each buffer's
    deepest consumer backwards; a node constrained to two different
    offsets (a tensor cannot be a slice of two places at once) raises
    :class:`ExecutionError`, as does any placement escaping the buffer.
    """
    idx = model.index
    n = idx.n
    # adjacency: intra[a] == intra[b] + delta  <=>  (b, a, -delta)
    edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]

    def constrain(a: int, b: int, delta: int) -> None:
        edges[a].append((b, delta))
        edges[b].append((a, -delta))

    for i, name in enumerate(idx.order):
        node = graph.node(name)
        if node.memory.inplace_of is not None:
            constrain(i, idx.index[node.inputs[node.memory.inplace_of]], 0)
        elif node.memory.view:
            aliased = node.attrs.get("view_inputs")
            indices = range(len(node.inputs)) if aliased is None else aliased
            rel = _view_operand_offsets(graph, node)
            for j in indices:
                # intra[input_j] == intra[view] + rel[j]
                constrain(idx.index[node.inputs[j]], i, rel[j])

    intra: list[int | None] = [None] * n
    for root in range(n - 1, -1, -1):  # deepest consumers first
        if intra[root] is not None:
            continue
        intra[root] = 0
        stack = [root]
        while stack:
            a = stack.pop()
            base = intra[a]
            assert base is not None
            for b, delta in edges[a]:
                want = base - delta
                if intra[b] is None:
                    intra[b] = want
                    stack.append(b)
                elif intra[b] != want:
                    raise ExecutionError(
                        f"inconsistent buffer aliasing: {idx.order[b]!r} is "
                        f"placed at byte {intra[b]} and {want} of the same "
                        "buffer"
                    )

    # normalise each buffer to start at 0 and check every member fits
    from repro.graph.analysis import bits

    for b in range(model.n_buffers):
        members = list(bits(model.buf_members[b]))
        lo = min(intra[i] for i in members)  # type: ignore[type-var]
        for i in members:
            intra[i] -= lo  # type: ignore[operator]
            if intra[i] + idx.out_bytes[i] > model.buf_size[b]:  # type: ignore[operator]
                raise ExecutionError(
                    f"tensor {idx.order[i]!r} at intra-buffer byte "
                    f"{intra[i]} escapes its {model.buf_size[b]}-byte buffer"
                )
    return {idx.order[i]: int(intra[i]) for i in range(n)}  # type: ignore[arg-type]


@dataclass(frozen=True)
class PlanExecutionStats:
    """Arena accounting measured during one :meth:`PlanExecutor.run`."""

    steps: int
    #: the plan's promised capacity (per sample — one arena row)
    arena_bytes: int
    #: highest byte extent any live buffer actually reached (per sample)
    measured_peak_bytes: int
    #: whether this run reused the bytes of a previous run's arena
    arena_reused: bool = False
    #: kernels that wrote straight into their arena site
    direct_writes: int = 0
    #: kernels that fell back to temporary-then-copy
    copy_writes: int = 0
    #: samples executed by this run (1 for :meth:`PlanExecutor.run`)
    batch: int = 1
    #: on-chip capacity the run was held to (None: no spill plan; the
    #: plan's own arena_bytes is the promise)
    capacity_bytes: int | None = None
    #: buffers homed off-chip by the spill plan
    spilled_buffers: int = 0
    #: off-chip traffic executed by this run (all samples), in the
    #: units of :class:`~repro.memsim.hierarchy.TrafficReport`
    spill_fetches: int = 0
    spill_writebacks: int = 0
    spill_bytes_in: int = 0
    spill_bytes_out: int = 0
    #: buffer touches replayed (reads + writes), for traffic reports
    spill_accesses: int = 0

    @property
    def spill_bytes_total(self) -> int:
        """Total off-chip bytes moved by this run (the Fig 11 quantity)."""
        return self.spill_bytes_in + self.spill_bytes_out

    @property
    def utilization(self) -> float:
        """Measured peak as a fraction of the planned arena."""
        return (
            self.measured_peak_bytes / self.arena_bytes if self.arena_bytes else 1.0
        )


#: step kinds inside a compiled :class:`_RunPlan`
_STEP_INPUT, _STEP_DIRECT, _STEP_COPY = 0, 1, 2
#: spill data movement: fetch = home -> staging slot, writeback = back
_STEP_FETCH, _STEP_WRITEBACK = 3, 4


@dataclass(frozen=True)
class _RunPlan:
    """One execution order compiled to a flat step table.

    ``steps`` rows are ``(kind, name, site, fn, args, attrs, params,
    shape)`` with every field resolved against the persistent arena —
    the run loop touches no graph or dict lookups. The liveness replay
    is data-independent, so the measured peak (and any overflow) is a
    property of the plan, computed once.
    """

    steps: tuple[tuple, ...]
    measured_peak_bytes: int
    overflow_at: str | None
    direct_writes: int
    copy_writes: int
    #: per-sample off-chip traffic baked into the step table (a batch
    #: of n rows moves n x these)
    spill_fetches: int = 0
    spill_writebacks: int = 0
    spill_bytes_in: int = 0
    spill_bytes_out: int = 0
    spill_accesses: int = 0


#: arena scrub policies between runs (see :class:`PlanExecutor`)
SCRUB_POLICIES = ("never", "zero", "fresh")

#: compiled pruned-output plans kept per executor (the full-schedule
#: plans are pinned separately); long-lived pooled executors must not
#: grow without bound under request traffic with varied output subsets
_RUN_PLAN_CACHE_LIMIT = 32

#: plan-cache batch key for the unbatched single-sample path (row 0,
#: unbatched kernel tables) — distinct from a batched run at n == 1,
#: which binds (1, ...)-shaped views and the batched tables
_UNBATCHED = 0


class PlanExecutor:
    """Execute a graph under a schedule and arena plan.

    >>> px = PlanExecutor(model.graph, model.schedule, model.plan)
    >>> outputs = px.run(random_feeds(model.graph))
    >>> px.last_stats.measured_peak_bytes <= model.plan.arena_bytes
    True

    Parameters mirror the reference executor: ``params`` defaults to the
    deterministic per-node random initialisation, so the same
    ``(graph, seed)`` pair yields bitwise-identical outputs under both
    executors.

    The arena is owned by the executor and reused across runs. ``scrub``
    picks what happens to its stale bytes between runs:

    ``"never"`` (default)
        reuse the dirty arena as-is. Safe by construction — every byte a
        run reads, it wrote first — and the fast path for serving.
    ``"zero"``
        zero-fill the existing arena before each run (defence in depth,
        e.g. against cross-request data exposure in multi-tenant use).
    ``"fresh"``
        allocate a brand-new zeroed arena per run — the historical
        per-request behaviour, kept as the benchmark baseline.

    ``batch_size=N`` provisions ``N`` arena rows with the identical
    per-sample layout, enabling :meth:`run_batch` over up to ``N``
    stacked samples (see the module docstring).

    ``spill`` executes under a two-region tiered arena: spilled
    buffers live off-chip and are staged on-chip per access window,
    with fetch/writeback steps in the step table and measured traffic
    in :attr:`last_stats` / :meth:`traffic_report` (see the module
    docstring). Outputs are bitwise those of the unspilled executor.
    """

    def __init__(
        self,
        graph: Graph,
        schedule: Schedule,
        plan: AllocationPlan,
        params: Params | None = None,
        seed: int = 0,
        model: BufferModel | None = None,
        scrub: str = "never",
        batch_size: int = 1,
        spill: SpillPlan | None = None,
    ) -> None:
        schedule.validate(graph)
        if scrub not in SCRUB_POLICIES:
            raise ExecutionError(
                f"unknown scrub policy {scrub!r}; pick one of {SCRUB_POLICIES}"
            )
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ExecutionError(
                f"batch_size must be a positive integer, got {batch_size!r}"
            )
        self.graph = graph
        self.schedule = schedule
        self.plan = plan
        self.params = params if params is not None else init_params(graph, seed)
        self.model = model or BufferModel.of(graph)
        self.scrub = scrub
        self.batch_size = batch_size
        self.runs = 0
        self.last_stats: PlanExecutionStats | None = None

        idx = self.model.index
        if set(plan.offsets) != set(range(self.model.n_buffers)):
            raise ExecutionError(
                "allocation plan does not cover the graph's buffers "
                f"({len(plan.offsets)} offsets for {self.model.n_buffers} buffers)"
            )
        for lt in plan.lifetimes:
            if self.model.buf_size[lt.buffer_id] != lt.size:
                raise ExecutionError(
                    f"allocation plan disagrees with the graph: buffer "
                    f"{lt.buffer_id} is {lt.size} bytes in the plan, "
                    f"{self.model.buf_size[lt.buffer_id]} in the graph"
                )

        itemsizes = {graph.node(name).output.dtype.itemsize for name in idx.order}
        if len(itemsizes) != 1:
            raise ExecutionError(
                "PlanExecutor requires a uniform tensor itemsize "
                f"(found {sorted(itemsizes)}); use the reference Executor "
                "for mixed-dtype graphs"
            )
        self._itemsize = itemsizes.pop()

        # tiered-arena layout: spilled buffers are homed in the spill
        # region and staged on-chip per window, everything else keeps a
        # fixed resident-region slot for its whole lifetime
        self.spill = spill
        self._spilled: frozenset[int] = (
            spill.spilled if spill is not None else frozenset()
        )
        if spill is not None:
            spill.validate()
            resident = set(range(self.model.n_buffers)) - set(self._spilled)
            if set(spill.resident_offsets) != resident:
                raise ExecutionError(
                    "spill plan does not cover this graph's buffers: "
                    f"{len(spill.resident_offsets)} resident offsets for "
                    f"{len(resident)} resident buffers"
                )
        self._region_offset: Mapping[int, int] = (
            spill.resident_offsets if spill is not None else plan.offsets
        )
        #: the on-chip promise every run is held to (resident region)
        self._capacity_bytes = (
            spill.capacity_bytes if spill is not None else plan.arena_bytes
        )

        intra = intra_buffer_offsets(graph, self.model)
        self._check_write_hazards(intra)
        self._schedule_pos = schedule.positions()
        self._buf_of_name = {
            name: self.model.buffer_of[i] for i, name in enumerate(idx.order)
        }
        self._elem_offset: dict[str, int] = {}
        self._intra_elem: dict[str, int] = {}
        for i, name in enumerate(idx.order):
            b = self.model.buffer_of[i]
            if intra[name] % self._itemsize:
                raise ExecutionError(
                    f"intra-buffer offset {intra[name]} of {name!r} is not "
                    f"aligned to the {self._itemsize}-byte element size"
                )
            self._intra_elem[name] = intra[name] // self._itemsize
            if b in self._spilled:
                continue  # staged per window: no fixed arena offset
            byte_off = self._region_offset[b] + intra[name]
            if byte_off % self._itemsize:
                raise ExecutionError(
                    f"planned offset {byte_off} of {name!r} is not aligned "
                    f"to the {self._itemsize}-byte element size"
                )
            self._elem_offset[name] = byte_off // self._itemsize

        # spilled-buffer geometry (element units) + per-node touch sets
        self._buf_elems: dict[int, int] = {}
        self._home_elem: dict[int, int] = {}
        self._touched_spilled: dict[str, tuple[int, ...]] = {}
        self._touch_count: dict[str, int] = {}
        spill_extent = 0
        window_extent = 0
        if spill is not None:
            for b in self._spilled:
                size = self.model.buf_size[b]
                home = spill.home_offsets[b]
                if (
                    size % self._itemsize
                    or home % self._itemsize
                    or any(
                        w.offset % self._itemsize for w in spill.windows[b]
                    )
                ):
                    raise ExecutionError(
                        f"spill plan for buffer {b} is not aligned to the "
                        f"{self._itemsize}-byte element size"
                    )
                self._buf_elems[b] = size // self._itemsize
                self._home_elem[b] = home // self._itemsize
                spill_extent = max(spill_extent, home + size)
                window_extent = max(
                    window_extent,
                    max(w.offset + size for w in spill.windows[b]),
                )
            # homes must be pairwise disjoint — the plan document does
            # not carry buffer sizes, so this cross-check against the
            # graph's buffer model is the executor's job (a corrupt
            # artifact with aliased homes would silently corrupt data)
            homes = sorted(
                (spill.home_offsets[b], self.model.buf_size[b], b)
                for b in self._spilled
            )
            for (off_a, size_a, a), (off_b, _, b2) in zip(homes, homes[1:]):
                if off_a + size_a > off_b:
                    raise ExecutionError(
                        f"spill plan home slots overlap: buffers {a} "
                        f"([{off_a}, {off_a + size_a})) and {b2} "
                        f"(starting at {off_b}) share spill-region bytes"
                    )
            # the planner's touch model, verbatim — capacity floors and
            # staging sets must never diverge from it
            for name, bufs in zip(schedule, step_touches(graph, schedule, self.model)):
                self._touch_count[name] = len(bufs)
                touched = tuple(b for b in bufs if b in self._spilled)
                if touched:
                    self._touched_spilled[name] = touched
        self._spill_elems = -(-spill_extent // self._itemsize)

        # sized to the layout's true extent so every site view exists
        # even under a plan that understates arena_bytes (the run-time
        # overflow check still holds such a plan to its promise)
        resident_promise = (
            spill.resident_bytes if spill is not None else plan.arena_bytes
        )
        self._arena_elems = max(
            -(-resident_promise // self._itemsize),
            -(-window_extent // self._itemsize),
            max(
                (
                    self._elem_offset[name] + graph.node(name).output.elements
                    for name in self._elem_offset
                ),
                default=0,
            ),
        )

        # The arena and its per-node views live for the executor's whole
        # lifetime: one allocation, reused by every run. Row b is the
        # complete single-sample arena of sample b — the per-sample
        # layout solved above is stamped out batch_size times, byte for
        # byte. Everything the hot loop needs per step (site view,
        # kernel, argument views, parameters, liveness trace) is
        # compiled once per (output subset, batch width) and cached.
        self._direct = self._plan_direct_writes()
        self._alloc_arena()
        #: compiled run plans keyed by (output subset or None for the
        #: full schedule, batch width; _UNBATCHED = single-sample path)
        self._run_plans: dict[tuple[frozenset[str] | None, int], _RunPlan] = {}
        self._pinned = {(None, _UNBATCHED)}
        if batch_size > 1:
            self._pinned.add((None, batch_size))
        for key in self._pinned:
            self._run_plans[key] = self._compile_run_plan(
                tuple(self.schedule), 0, key[1]
            )

    def _alloc_arena(self) -> None:
        """(Re)allocate the zeroed region(s) and rebuild every site view."""
        self._arena = np.zeros(
            (self.batch_size, self._arena_elems), dtype=_EXEC_DTYPE
        )
        #: off-chip home bytes of spilled buffers (empty without spill)
        self._spill_arena = np.zeros(
            (self.batch_size, self._spill_elems), dtype=_EXEC_DTYPE
        )
        #: per-node views keyed by batch width (_UNBATCHED = row-0
        #: views with the spec's own shape; n >= 1 = (n, ...) views
        #: over the first n rows), built lazily per width
        self._sites: dict[int, dict[str, np.ndarray]] = {}

    def _check_write_hazards(self, intra: dict[str, int]) -> None:
        """Reject schedules under which buffer sharing corrupts a read.

        Two members of one buffer with overlapping byte ranges are fine
        only while nobody reads the earlier tensor after the later one
        writes — e.g. an in-place accumulator whose target has a second
        consumer scheduled after the overwrite would silently read the
        *new* bytes. A view node rewriting an aliased operand's slice
        is exempt: it copies the identical bytes back.
        """
        from repro.graph.analysis import bits

        graph, model = self.graph, self.model
        idx = model.index
        pos = self.schedule.positions()

        def aliased_inputs(node: Node) -> set[str]:
            indices = node.attrs.get("view_inputs")
            if indices is None:
                indices = range(len(node.inputs))
            return {node.inputs[j] for j in indices}

        for b in range(model.n_buffers):
            members = [
                (idx.order[i], intra[idx.order[i]], idx.out_bytes[i])
                for i in bits(model.buf_members[b])
            ]
            for vi, (a, a_off, a_sz) in enumerate(members):
                for b2, b_off, b_sz in members[vi + 1 :]:
                    if not (a_off < b_off + b_sz and b_off < a_off + a_sz):
                        continue  # disjoint slices (e.g. view operands)
                    # late (scheduled later) writes over early's bytes
                    early, late = (a, b2) if pos[a] <= pos[b2] else (b2, a)
                    writer = graph.node(late)
                    if writer.memory.view and early in aliased_inputs(writer):
                        continue  # byte-preserving copy-back
                    clobbered = [
                        c
                        for c in graph.succs(early)
                        if c != late and pos[c] > pos[late]
                    ]
                    if clobbered:
                        raise ExecutionError(
                            f"schedule is unsafe for this buffer layout: "
                            f"{late!r} overwrites {early!r}'s bytes at step "
                            f"{pos[late]}, but {clobbered[0]!r} still reads "
                            f"{early!r} at step {pos[clobbered[0]]}"
                        )

    # ------------------------------------------------------------------
    @property
    def arena_nbytes(self) -> int:
        """Actual bytes held by the preallocated resident arena array
        (all ``batch_size`` rows)."""
        return self._arena.nbytes

    @property
    def spill_nbytes(self) -> int:
        """Bytes held by the off-chip spill region (0 without spill)."""
        return self._spill_arena.nbytes

    def _sites_for(self, n: int) -> dict[str, np.ndarray]:
        """Per-node arena views at batch width ``n``, built lazily once
        per arena allocation.

        ``n == _UNBATCHED`` binds row-0 views with each spec's own shape
        (the single-sample hot path); ``n >= 1`` binds ``(n, ...)``
        views spanning the first ``n`` rows — zero-copy strided views
        into the same bytes, so batched and single-sample runs share
        one arena. Spilled nodes are absent: their views move per
        staging window and are bound at step-table compile time.
        """
        cached = self._sites.get(n)
        if cached is not None:
            return cached
        sites: dict[str, np.ndarray] = {}
        for name in self.model.index.order:
            if name not in self._elem_offset:
                continue  # spilled: bound per window
            node = self.graph.node(name)
            start = self._elem_offset[name]
            stop = start + node.output.elements
            if n == _UNBATCHED:
                sites[name] = self._arena[0, start:stop].reshape(node.output.shape)
            else:
                # splitting the (contiguous) trailing axis of a strided
                # (n, elems) slice is always expressible as a view
                sites[name] = self._arena[:n, start:stop].reshape(
                    (n,) + node.output.shape
                )
        self._sites[n] = sites
        return sites

    def _elem_range(self, name: str) -> tuple[int, int]:
        start = self._elem_offset[name]
        return start, start + self.graph.node(name).output.elements

    def _plan_direct_writes(self) -> dict[str, str]:
        """Choose, per node, a destination-write kernel (recorded by op
        name; resolved against the unbatched or batched table at plan
        compile time) that is provably safe for this arena layout (see
        module docstring); everything else keeps the
        temporary-then-copy fallback. The safety argument is purely
        about per-sample element ranges, which batched rows replicate
        exactly — one verdict covers every batch width."""

        def disjoint_or_equal(src: str, lo: int, hi: int) -> bool:
            s_lo, s_hi = self._elem_range(src)
            return s_hi <= lo or hi <= s_lo or (s_lo == lo and s_hi == hi)

        direct: dict[str, str] = {}
        for name in self.model.index.order:
            node = self.graph.node(name)
            out_kernel = OUT_KERNELS.get(node.op)
            if out_kernel is None or node.op not in KERNELS:
                continue
            if self._touched_spilled.get(name):
                # spilled sites move per staging window; the disjointness
                # argument below is about fixed ranges, so keep the
                # always-safe temporary-then-copy path
                continue
            spec = node.output
            out_lo, out_hi = self._elem_range(name)
            in_specs = [self.graph.node(s).output for s in node.inputs]
            if node.op == "concat":
                # operands land at consecutive axis-0 slices of the output
                if any(
                    s.shape[1:] != spec.shape[1:] or len(s.shape) != len(spec.shape)
                    for s in in_specs
                ):
                    continue
                if sum(s.shape[0] for s in in_specs) != spec.shape[0]:
                    continue
                rel = 0
                ok = True
                for src, s in zip(node.inputs, in_specs):
                    s_lo, s_hi = self._elem_range(src)
                    d_lo, d_hi = out_lo + rel, out_lo + rel + s.elements
                    if not (s_hi <= d_lo or d_hi <= s_lo or s_lo == d_lo):
                        ok = False
                        break
                    rel += s.elements
                if not ok:
                    continue
            elif node.op in ("flatten", "slice_channels"):
                if node.op == "flatten" and in_specs[0].elements != spec.elements:
                    continue
                if node.op == "slice_channels":
                    lo, hi = node.attrs["range"]
                    if spec.shape != (hi - lo,) + in_specs[0].shape[1:]:
                        continue
                if not disjoint_or_equal(node.inputs[0], out_lo, out_hi):
                    continue
            else:
                # positionwise elementwise chain: every input must have
                # the output's exact shape and sit either away from the
                # destination or exactly on it (in-place). Only the
                # first two operands are read in lockstep with the
                # write; an n-ary chain reads operands 2+ *after* the
                # destination was written, so those must be strictly
                # disjoint, never merely identical.
                if any(s.shape != spec.shape for s in in_specs):
                    continue
                ok = True
                for j, src in enumerate(node.inputs):
                    s_lo, s_hi = self._elem_range(src)
                    disjoint = s_hi <= out_lo or out_hi <= s_lo
                    identical = s_lo == out_lo and s_hi == out_hi
                    if not (disjoint or (identical and j < 2)):
                        ok = False
                        break
                if not ok:
                    continue
            direct[name] = node.op
        return direct

    def _window_view(
        self, name: str, window: StageWindow, n: int
    ) -> np.ndarray:
        """View of spilled node ``name`` inside its staged buffer slot."""
        node = self.graph.node(name)
        start = window.offset // self._itemsize + self._intra_elem[name]
        stop = start + node.output.elements
        if n == _UNBATCHED:
            return self._arena[0, start:stop].reshape(node.output.shape)
        return self._arena[:n, start:stop].reshape((n,) + node.output.shape)

    def _stage_and_home(
        self, b: int, window: StageWindow, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-buffer (staging slot, home slot) views for fetch and
        writeback steps — raw element runs, no tensor shape."""
        elems = self._buf_elems[b]
        s0 = window.offset // self._itemsize
        h0 = self._home_elem[b]
        if n == _UNBATCHED:
            return (
                self._arena[0, s0 : s0 + elems],
                self._spill_arena[0, h0 : h0 + elems],
            )
        return (
            self._arena[:n, s0 : s0 + elems],
            self._spill_arena[:n, h0 : h0 + elems],
        )

    def _compile_run_plan(
        self, order: tuple[str, ...], executed0: int, n: int
    ) -> "_RunPlan":
        """Bake one execution order into a flat step table at batch
        width ``n`` (``_UNBATCHED`` for the single-sample path).

        The liveness trace is replayed here, once: which buffers are
        live at each step — and therefore the measured high-water mark —
        depends only on (schedule, plan, buffer model), never on request
        data or batch width (rows are layout-identical), so re-deriving
        it per request would re-measure a constant. The replay also
        locates the first overflowing step, if any, so ``run`` can fail
        with the same diagnostic the per-step check used to produce —
        an understated plan is rejected statically, before any kernel
        (batched or not) touches the arena.

        Under a spill plan the replay also inserts the fetch/writeback
        data movement (see the module docstring): a spilled buffer's
        staging slot is held from its window entry to its last executed
        touch in that window, a window entry after the buffer's first
        write fetches the home bytes, and a dirty window exit writes
        them back when the data is needed again. The resulting traffic
        is data-independent too, so it is counted here, once per plan.
        """
        graph, model, params = self.graph, self.model, self.params
        if n == _UNBATCHED:
            kernel_table, out_table = KERNELS, OUT_KERNELS
            batch_dims: tuple[int, ...] = ()
        else:
            kernel_table, out_table = BATCH_KERNELS, BATCH_OUT_KERNELS
            batch_dims = (n,)
        sites = self._sites_for(n)
        idx = model.index
        spill = self.spill
        spilled = self._spilled
        pos = self._schedule_pos
        steps: list[tuple] = []
        direct_writes = 0
        copy_writes = 0
        live: set[int] = set()
        executed = executed0
        measured_peak = 0
        overflow_at: str | None = None

        # static spill bookkeeping for THIS order: which window each
        # executed touch lands in, and where windows (as executed) end
        fetches = writebacks = bytes_in = bytes_out = accesses = 0
        staged_win: dict[int, StageWindow] = {}
        staged_extent: dict[int, int] = {}
        written: set[int] = set()
        dirty: set[int] = set()
        windows_at: dict[int, dict[int, StageWindow]] = {}
        last_in_win: dict[tuple[int, int], int] = {}
        last_touch: dict[int, int] = {}
        if spilled:
            for oi, name in enumerate(order):
                for b in self._touched_spilled.get(name, ()):
                    w = spill.window_at(b, pos[name])  # type: ignore[union-attr]
                    windows_at.setdefault(b, {})[oi] = w
                    last_in_win[(b, w.start)] = oi
                    last_touch[b] = oi

        for oi, name in enumerate(order):
            node = graph.node(name)
            u = idx.index[name]
            b_own = model.buffer_of[u]
            if spill is not None:
                accesses += self._touch_count[name]
            # stage every spilled buffer this step touches (fetching
            # home bytes unless nothing was ever written to them)
            for b in self._touched_spilled.get(name, ()):
                w = windows_at[b][oi]
                if staged_win.get(b) is not w:
                    staged_win[b] = w
                    staged_extent[b] = w.offset + model.buf_size[b]
                    if b in written:
                        stage, home = self._stage_and_home(b, w, n)
                        steps.append(
                            (
                                _STEP_FETCH,
                                f"<fetch:b{b}>",
                                stage,
                                None,
                                (home,),
                                None,
                                None,
                                None,
                            )
                        )
                        fetches += 1
                        bytes_in += model.buf_size[b]
            if b_own not in spilled:
                live.add(b_own)
            extent = max(
                max(
                    (
                        self._region_offset[bb] + model.buf_size[bb]
                        for bb in live
                    ),
                    default=0,
                ),
                max(staged_extent.values(), default=0),
            )
            measured_peak = max(measured_peak, extent)
            if overflow_at is None and measured_peak > self._capacity_bytes:
                overflow_at = name
            executed |= 1 << u
            for b2 in model.check_buffers[u]:
                if model.buf_persistent[b2]:
                    continue
                if not (model.buf_required[b2] & ~executed):
                    live.discard(b2)

            def view_of(nm: str) -> np.ndarray:
                bb = self._buf_of_name[nm]
                if bb in spilled:
                    return self._window_view(nm, staged_win[bb], n)
                return sites[nm]

            site = view_of(name)
            shape = batch_dims + node.output.shape
            if node.op == "input":
                steps.append((_STEP_INPUT, name, site, None, (), {}, {}, shape))
            else:
                direct_op = self._direct.get(name)
                args = tuple(view_of(src) for src in node.inputs)
                node_params = params.get(name, {})
                if direct_op is not None:
                    steps.append(
                        (
                            _STEP_DIRECT,
                            name,
                            site,
                            out_table[direct_op],
                            args,
                            node.attrs,
                            node_params,
                            None,
                        )
                    )
                    direct_writes += 1
                else:
                    kernel = kernel_table.get(node.op)
                    if kernel is None:
                        raise ExecutionError(f"no kernel for op {node.op!r}")
                    steps.append(
                        (
                            _STEP_COPY,
                            name,
                            site,
                            kernel,
                            args,
                            node.attrs,
                            node_params,
                            shape,
                        )
                    )
                    copy_writes += 1

            # window exits: write dirty staged bytes home when the data
            # is needed again (or holds a graph output); dead windows
            # drop silently, exactly like the memsim eviction rule
            if b_own in spilled:
                written.add(b_own)
                dirty.add(b_own)
            for b in self._touched_spilled.get(name, ()):
                w = staged_win[b]
                if last_in_win.get((b, w.start)) != oi:
                    continue  # window continues at a later executed step
                has_later = last_touch[b] != oi
                if b in dirty and (has_later or model.buf_persistent[b]):
                    stage, home = self._stage_and_home(b, w, n)
                    steps.append(
                        (
                            _STEP_WRITEBACK,
                            f"<writeback:b{b}>",
                            home,
                            None,
                            (stage,),
                            None,
                            None,
                            None,
                        )
                    )
                    writebacks += 1
                    bytes_out += model.buf_size[b]
                    dirty.discard(b)
                elif not has_later:
                    dirty.discard(b)
                staged_extent.pop(b, None)
        return _RunPlan(
            steps=tuple(steps),
            measured_peak_bytes=measured_peak,
            overflow_at=overflow_at,
            direct_writes=direct_writes,
            copy_writes=copy_writes,
            spill_fetches=fetches,
            spill_writebacks=writebacks,
            spill_bytes_in=bytes_in,
            spill_bytes_out=bytes_out,
            spill_accesses=accesses,
        )

    def _get_plan(self, wanted: list[str] | None, n: int) -> "_RunPlan":
        """The compiled plan for ``(output subset, batch width)``.

        ``wanted=None`` is the full schedule; otherwise the schedule is
        restricted to ancestors of ``wanted``, with every pruned node
        treated as already executed so shared buffers release once their
        *remaining* consumers have run (reference-executor semantics).
        """
        key = (None if wanted is None else frozenset(wanted), n)
        hit = self._run_plans.get(key)
        if hit is not None:
            return hit
        if wanted is None:
            order: tuple[str, ...] = tuple(self.schedule)
            pruned_mask = 0
        else:
            needed: set[str] = set()
            stack = list(key[0])  # type: ignore[arg-type]
            while stack:
                name = stack.pop()
                if name in needed:
                    continue
                needed.add(name)
                stack.extend(self.graph.node(name).inputs)
            order = tuple(nm for nm in self.schedule if nm in needed)
            idx = self.model.index
            pruned_mask = 0
            for name in idx.order:
                if name not in needed:
                    pruned_mask |= 1 << idx.index[name]
        compiled = self._compile_run_plan(order, pruned_mask, n)
        if len(self._run_plans) - len(self._pinned) >= _RUN_PLAN_CACHE_LIMIT:
            # drop the oldest unpinned plan (dict preserves insertion
            # order; the full-schedule plans stay)
            for stale in self._run_plans:
                if stale not in self._pinned:
                    del self._run_plans[stale]
                    break
        self._run_plans[key] = compiled
        return compiled

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute the schedule inside the executor's persistent arena.

        Returns copies of the requested ``outputs`` (default: graph
        sinks) — an intermediate output is snapshotted the moment it is
        produced, before any later in-place consumer can overwrite its
        bytes. Like the reference executor, an explicit ``outputs``
        subset prunes execution (and required feeds) to the ancestors of
        the requested nodes. Sets :attr:`last_stats` with the measured
        arena peak and raises :class:`ExecutionError` if that peak ever
        exceeds the plan's ``arena_bytes``.
        """
        return self._execute(feeds, outputs, _UNBATCHED)

    def run_batch(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
        batch: int | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute ``n`` stacked samples in one pass over the arena rows.

        Every feed carries a leading batch axis: input ``x`` of spec
        shape ``s`` is fed as ``(n, *s)`` with ``1 <= n <= batch_size``.
        ``batch`` makes ``n`` explicit; by default it is inferred from
        the feeds (which must agree). Outputs come back with the same
        leading axis, and sample ``b`` of every output is bitwise what
        :meth:`run` returns for sample ``b`` alone — stacking is a
        dispatch-amortisation strategy, not an approximation. A partial
        batch (``n < batch_size``) runs at its true size on the first
        ``n`` arena rows; nothing is padded. Sets :attr:`last_stats`
        with ``batch=n``.
        """
        n = batch
        if n is None:
            widths = {int(np.asarray(v).shape[0]) if np.ndim(v) else 0
                      for v in feeds.values()}
            if len(widths) != 1:
                raise ExecutionError(
                    "cannot infer the batch width: feeds have leading "
                    f"dimensions {sorted(widths)}; stack every feed to "
                    "(n, *spec.shape) or pass batch= explicitly"
                )
            n = widths.pop()
        if not 1 <= n <= self.batch_size:
            raise ExecutionError(
                f"batch width {n} outside this executor's capacity "
                f"1..{self.batch_size} (construct with batch_size={n} "
                "or larger)"
            )
        return self._execute(feeds, outputs, n)

    def _execute(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None,
        n: int,
    ) -> dict[str, np.ndarray]:
        wanted = list(outputs) if outputs is not None else self.graph.sinks
        unknown = [w for w in wanted if w not in self.graph]
        if unknown:
            raise ExecutionError(f"requested outputs never computed: {unknown}")
        subset = None if outputs is None else wanted
        plan = self._get_plan(subset, n)
        if plan.overflow_at is not None:
            if self.spill is not None:
                raise ExecutionError(
                    f"resident region overflow at {plan.overflow_at!r}: "
                    f"measured high-water mark {plan.measured_peak_bytes} "
                    f"exceeds the {self._capacity_bytes}-byte on-chip "
                    "capacity per sample (corrupt spill plan)"
                )
            raise ExecutionError(
                f"arena overflow at {plan.overflow_at!r}: measured high-water "
                f"mark {plan.measured_peak_bytes} exceeds the planned "
                f"{self.plan.arena_bytes} bytes per sample"
            )

        if self.scrub == "fresh":
            # brand-new arena: rebuild the views every step table binds
            # to, then recompile the plan against the new views
            self._alloc_arena()
            self._run_plans = {}
            for key in self._pinned:
                self._run_plans[key] = self._compile_run_plan(
                    tuple(self.schedule), 0, key[1]
                )
            plan = self._get_plan(subset, n)
        elif self.scrub == "zero":
            self._arena.fill(0.0)
            if self._spill_elems:
                self._spill_arena.fill(0.0)
        reused = self.scrub != "fresh" and self.runs > 0

        snapshots: dict[str, np.ndarray] = {}
        want = set(wanted)
        for kind, name, site, fn, args, attrs, node_params, shape in plan.steps:
            if kind == _STEP_DIRECT:
                fn(args, attrs, node_params, site)
            elif kind == _STEP_COPY:
                value = fn(args, attrs, node_params)
                if tuple(value.shape) != shape:
                    raise ExecutionError(
                        f"kernel produced shape {value.shape} for {name!r}, "
                        f"spec says {shape}"
                    )
                site[...] = value
            elif kind == _STEP_INPUT:
                if name not in feeds:
                    raise ExecutionError(f"missing feed for input {name!r}")
                value = np.asarray(feeds[name], dtype=_EXEC_DTYPE)
                if tuple(value.shape) != shape:
                    raise ExecutionError(
                        f"feed {name!r} has shape {value.shape}, "
                        f"expected {shape}"
                    )
                site[...] = value
            else:  # fetch / writeback: verbatim whole-buffer byte moves
                site[...] = args[0]
                continue
            if name in want:
                snapshots[name] = site.copy()

        self.runs += 1
        n_eff = 1 if n == _UNBATCHED else n
        self.last_stats = PlanExecutionStats(
            steps=len(plan.steps),
            arena_bytes=self.plan.arena_bytes,
            measured_peak_bytes=plan.measured_peak_bytes,
            arena_reused=reused,
            direct_writes=plan.direct_writes,
            copy_writes=plan.copy_writes,
            batch=n_eff,
            capacity_bytes=(
                self.spill.capacity_bytes if self.spill is not None else None
            ),
            spilled_buffers=len(self._spilled),
            spill_fetches=plan.spill_fetches * n_eff,
            spill_writebacks=plan.spill_writebacks * n_eff,
            spill_bytes_in=plan.spill_bytes_in * n_eff,
            spill_bytes_out=plan.spill_bytes_out * n_eff,
            spill_accesses=plan.spill_accesses * n_eff,
        )
        return {w: snapshots[w] for w in wanted}

    def traffic_report(self) -> TrafficReport:
        """Off-chip traffic of the most recent run, in the Fig 11
        simulator's units (:class:`~repro.memsim.hierarchy.TrafficReport`).

        Unlike the offline simulator this reports *executed* movement:
        every counted byte was actually copied between the spill region
        and a staging slot by a fetch or writeback step. Without a
        spill plan (or with a trivial one) the report is all-zero —
        the "SERENITY removes off-chip communication" case.
        """
        stats = self.last_stats
        if stats is None:
            raise ExecutionError(
                "no run to report traffic for; call run() or run_batch() first"
            )
        return TrafficReport(
            capacity_bytes=(
                stats.capacity_bytes
                if stats.capacity_bytes is not None
                else stats.arena_bytes
            ),
            policy=self.spill.policy if self.spill is not None else "resident",
            bytes_in=stats.spill_bytes_in,
            bytes_out=stats.spill_bytes_out,
            fetches=stats.spill_fetches,
            writebacks=stats.spill_writebacks,
            bypass_bytes=0,
            accesses=stats.spill_accesses,
        )
