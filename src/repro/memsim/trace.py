"""Schedule → access trace for the memory-hierarchy simulator.

Traffic is modelled at **tile granularity** (default 8 KB): kernels
stream feature maps row-by-row, so the unit of DRAM↔SRAM movement is a
tile of a tensor, not the whole activation — without this, a tensor
larger than SRAM would bypass entirely and every schedule would look
identical at small capacities. ``tile_bytes=None`` falls back to
whole-tensor transfers.

Buffer aliasing (view concats, in-place accumulation) affects
*allocation* footprints, not transfer sizes, so the trace resolves
through aliasing:

* a view (zero-copy concat) performs no accesses of its own;
* reading a view's output reads each underlying materialised tensor
  (recursively — nested views resolve all the way down);
* an in-place node writes a fresh logical tensor version (same bytes).

Each executed node contributes, in order: read accesses for every tile
of every distinct resolved input tensor, then write accesses for its own
output tiles (unless it is a view). Accesses carry the step index and
whether this is the tile's *last* use (dead afterwards — droppable
without writeback).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = [
    "Access",
    "AccessTrace",
    "build_trace",
    "resolve_tile_bytes",
    "tile_spans",
]


#: default DRAM↔SRAM transfer granularity
DEFAULT_TILE_BYTES = 8 * 1024


def resolve_tile_bytes(
    tile_bytes: int | None,
    default: int | None = DEFAULT_TILE_BYTES,
) -> int | None:
    """Normalise a tile-size knob to an effective granularity.

    ``None`` means "use the caller's default" (the simulator's
    ``DEFAULT_TILE_BYTES``, or no tiling at all for the spill planner),
    ``0`` means whole-tensor transfers, and any positive value is used
    as-is. Negative sizes are rejected. Returns the effective tile size
    in bytes, or ``None`` for whole-tensor granularity.
    """
    if tile_bytes is None:
        return default
    if tile_bytes == 0:
        return None
    if tile_bytes < 0:
        from repro.exceptions import ReproError

        raise ReproError(f"tile_bytes must be >= 0, got {tile_bytes}")
    return tile_bytes


def tile_spans(
    total_bytes: int, tile_bytes: int | None
) -> tuple[tuple[int, int], ...]:
    """Partition ``total_bytes`` into ``(offset, size)`` tile spans.

    This is *the* tile geometry — the simulator's trace builder, the
    spill planner's tiler, and the executor's tiled transfer steps all
    partition through here, so simulated and live traffic agree by
    construction. ``tile_bytes=None`` (or a tensor no larger than one
    tile) yields a single whole-tensor span; otherwise full tiles
    followed by one remainder span. Span sizes always sum to
    ``total_bytes`` exactly.
    """
    if tile_bytes is None or total_bytes <= tile_bytes:
        return ((0, total_bytes),)
    n_full, rem = divmod(total_bytes, tile_bytes)
    spans = [(k * tile_bytes, tile_bytes) for k in range(n_full)]
    if rem:
        spans.append((n_full * tile_bytes, rem))
    return tuple(spans)


@dataclass(frozen=True)
class Access:
    step: int
    node: str
    #: id of the transferred object: (tensor index, tile index)
    buffer_id: tuple[int, int]
    size: int
    kind: str  # 'read' | 'write'
    last_use: bool


@dataclass(frozen=True)
class AccessTrace:
    """Flat access sequence plus per-object access positions (the
    clairvoyant knowledge Belady's policy needs)."""

    accesses: tuple[Access, ...]
    #: object id -> ascending positions in ``accesses``
    positions: dict[tuple[int, int], tuple[int, ...]]
    n_buffers: int

    def __len__(self) -> int:
        return len(self.accesses)

    @property
    def total_bytes_touched(self) -> int:
        return sum(a.size for a in self.accesses)


def build_trace(
    graph: Graph,
    schedule: Schedule,
    model: BufferModel | None = None,
    tile_bytes: int | None = DEFAULT_TILE_BYTES,
) -> AccessTrace:
    """Linearise ``schedule`` into tile accesses (see module docstring).

    ``model`` is accepted for interface compatibility; only its index is
    used when provided.
    """
    idx = model.index if model is not None else None
    if idx is None:
        from repro.graph.analysis import GraphIndex

        idx = GraphIndex.build(graph)

    is_view = tuple(graph.node(name).memory.view for name in idx.order)
    _memo: dict[int, tuple[int, ...]] = {}

    def materialize(i: int) -> tuple[int, ...]:
        """Materialised tensor ids behind node *i*'s output."""
        if i in _memo:
            return _memo[i]
        if not is_view[i]:
            out: tuple[int, ...] = (i,)
        else:
            seen: dict[int, None] = {}
            for p in idx.preds[i]:
                for t in materialize(p):
                    seen.setdefault(t, None)
            out = tuple(seen)
        _memo[i] = out
        return out

    def tiles_of(t: int) -> list[tuple[tuple[int, int], int]]:
        """[(object id, tile bytes)] for tensor t."""
        spans = tile_spans(idx.out_bytes[t], tile_bytes)
        return [((t, k), sz) for k, (_off, sz) in enumerate(spans)]

    raw: list[tuple[int, str, tuple[int, int], int, str]] = []
    for step, name in enumerate(schedule):
        u = idx.index[name]
        if is_view[u]:
            continue  # zero-copy: a view moves no data of its own
        seen: dict[int, None] = {}
        for p in idx.preds[u]:
            for t in materialize(p):
                seen.setdefault(t, None)
        for t in seen:
            for obj, sz in tiles_of(t):
                raw.append((step, name, obj, sz, "read"))
        for obj, sz in tiles_of(u):
            raw.append((step, name, obj, sz, "write"))

    positions: dict[tuple[int, int], list[int]] = {}
    for i, (_, _, obj, _, _) in enumerate(raw):
        positions.setdefault(obj, []).append(i)

    # A tensor is persistent (never droppable) iff it is a graph output
    # itself or lives inside a view chain ending at a graph output.
    persistent: set[int] = set()
    for i in range(idx.n):
        if not idx.succs[i]:
            persistent.update(materialize(i))

    last_pos = {obj: ps[-1] for obj, ps in positions.items()}
    accesses = tuple(
        Access(
            step=step,
            node=node,
            buffer_id=obj,
            size=sz,
            kind=kind,
            last_use=(i == last_pos[obj]) and obj[0] not in persistent,
        )
        for i, (step, name_, obj, sz, kind) in enumerate(raw)
        for node in (name_,)
    )
    return AccessTrace(
        accesses=accesses,
        positions={obj: tuple(ps) for obj, ps in positions.items()},
        n_buffers=idx.n,
    )
