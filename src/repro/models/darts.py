"""DARTS normal cell (Liu et al., ICLR 2019) — the published genotype.

The paper schedules "only the first cell because it has the highest peak
memory footprint" of the DARTS ImageNet network (C=48). We lower the
released ``DARTS_V2`` normal genotype to primitive ops exactly as the
reference implementation does:

* ``sep_conv_3x3`` → (depthwise 3x3 → pointwise) × ``rounds`` — the
  original applies the block twice; ReLU/BN are *folded into the convs*
  exactly as the TFLite converter fuses them, so no standalone
  activation tensors exist (a standalone ReLU on the 600 KB cell input
  would otherwise dominate every schedule's peak, which is not what the
  TFLite baseline of the paper executes);
* ``dil_conv_3x3`` → dilated depthwise 3x3 → pointwise (dilation only
  changes taps, not shapes, under ``same`` padding);
* ``skip_connect`` → no op emitted: the consuming ``add`` reads the
  state directly (TFLite eliminates identities);
* each cell input is preprocessed by a folded 1x1 conv; both inputs
  enter at the cell's working resolution (within a normal-cell stack
  ``c_{k-2}`` and ``c_{k-1}`` share a resolution; the peak-dominating
  cell the paper schedules is of this kind — its reported footprints
  are inconsistent with a half-resolution ``c_{k-2}``).

Intermediate state ``s_i = op_a(s_j) + op_b(s_k)``; the cell output
concatenates states 2..5. The concat is the cell's sink, so identity
graph rewriting finds nothing to improve here — consistent with Fig 13,
where DARTS' scheduling time is identical with and without rewriting.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.transforms import mark_concat_views

__all__ = ["DARTS_V2_NORMAL", "darts_normal_cell"]

#: (op, input_state) pairs, two per intermediate state — the released
#: DARTS_V2 normal genotype.
DARTS_V2_NORMAL: tuple[tuple[str, int], ...] = (
    ("sep_conv_3x3", 0),
    ("sep_conv_3x3", 1),
    ("sep_conv_3x3", 0),
    ("sep_conv_3x3", 1),
    ("sep_conv_3x3", 1),
    ("skip_connect", 0),
    ("skip_connect", 0),
    ("dil_conv_3x3", 2),
)


def _op_steps(op: str, channels: int, rounds: int) -> list[tuple[str, dict]]:
    """Primitive (kind, kwargs) steps an op chain lowers to (ReLU/BN
    folded into the convs, TFLite-style)."""
    if op == "sep_conv_3x3":
        steps: list[tuple[str, dict]] = []
        for _ in range(rounds):
            steps += [
                ("dw", {"kernel": 3}),
                ("pw", {"out_channels": channels}),
            ]
        return steps
    if op == "dil_conv_3x3":
        # dilation=2 keeps the output shape under 'same' padding;
        # recorded as an attr for cost/documentation purposes
        return [
            ("dw", {"kernel": 3, "dilation": 2}),
            ("pw", {"out_channels": channels}),
        ]
    if op == "skip_connect":
        return []  # consumed state feeds the add directly
    raise ValueError(f"unknown genotype op {op!r}")


def _emit_step(b: GraphBuilder, kind: str, x: str, name: str, **kw) -> str:
    if kind == "dw":
        return b.op("depthwise_conv2d", (x,), name=name, **kw)
    if kind == "pw":
        return b.conv2d(x, kw["out_channels"], kernel=1, name=name)
    raise ValueError(kind)  # pragma: no cover


def darts_normal_cell(
    channels: int = 48,
    hw: int = 28,
    rounds: int = 2,
    genotype: tuple[tuple[str, int], ...] = DARTS_V2_NORMAL,
) -> Graph:
    """The peak normal cell of the DARTS ImageNet network.

    Both cell inputs and all intermediate states are
    ``channels`` x ``hw`` x ``hw``.
    """
    b = GraphBuilder("darts-normal")
    s0_raw = b.input("c_km2", (channels, hw, hw))
    s1_raw = b.input("c_km1", (channels, hw, hw))

    # preprocessing: folded 1x1 convs
    s0 = b.conv2d(s0_raw, channels, kernel=1, name="pre0/conv")
    s1 = b.conv2d(s1_raw, channels, kernel=1, name="pre1/conv")

    states = [s0, s1]

    # Lower all op chains *level by level* — the interleaved order a graph
    # exporter emits (and hence the TFLite-like baseline's execution
    # order). Chains reading an intermediate state start once that state's
    # add node exists, exactly as in a breadth-first traversal.
    pending: list[tuple[int, str, list[tuple[str, dict]], str]] = []
    adds_done: dict[int, str] = {0: s0, 1: s1}
    results: dict[tuple[int, str], str] = {}
    for i in range(len(genotype) // 2):
        for side, (op, j) in zip("ab", (genotype[2 * i], genotype[2 * i + 1])):
            pending.append((j, f"n{i + 2}/{side}", _op_steps(op, channels, rounds), ""))

    cursors: dict[str, tuple[str, int]] = {}  # chain name -> (tensor, step)
    sources = {name: j for (j, name, _, _) in pending}
    finished: dict[str, str] = {}
    while len(finished) < len(pending):
        progressed = False
        # one level: advance every runnable chain by one primitive
        for _, name, steps, _ in pending:
            if name in finished:
                continue
            src_state = sources[name]
            if src_state not in adds_done:
                continue  # upstream add not yet emitted
            if not steps:  # skip_connect: the state itself is the result
                finished[name] = adds_done[src_state]
                progressed = True
                continue
            tensor, step = cursors.get(name, (adds_done[src_state], 0))
            kind, kw = steps[step]
            tensor = _emit_step(b, kind, tensor, f"{name}/{step}_{kind}", **kw)
            step += 1
            progressed = True
            if step == len(steps):
                finished[name] = tensor
            else:
                cursors[name] = (tensor, step)
        # emit adds whose two chains completed
        for i in range(len(genotype) // 2):
            state_id = i + 2
            la, lb = f"n{state_id}/a", f"n{state_id}/b"
            if state_id not in adds_done and la in finished and lb in finished:
                adds_done[state_id] = b.add(
                    finished[la], finished[lb], name=f"n{state_id}/add"
                )
                states.append(adds_done[state_id])
        if not progressed and len(finished) < len(pending):  # pragma: no cover
            raise RuntimeError("DARTS lowering deadlocked")

    b.concat([adds_done[i] for i in range(2, 2 + len(genotype) // 2)], name="cell_out")
    # TFLite-style concat buffer sharing: states consumed only by the
    # output concat are produced directly into the cell-output buffer
    return mark_concat_views(b.build())
