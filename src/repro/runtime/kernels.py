"""NumPy reference kernels for every operator.

These are *correctness* kernels: vectorised over the spatial dimensions
(per the NumPy-idiom guidance — the inner loops run only over kernel
taps, never pixels) but written for clarity, not throughput. They give
the rewriting rules an executable semantics so identity preservation is
testable with ``allclose`` rather than argued on paper.

Layout conventions: feature maps are ``(C, H, W)``; convolution weights
``(M, C, kh, kw)``; depthwise weights ``(C, mult, kh, kw)``; dense
weights ``(units, features)``.

Batched variants
----------------
Every kernel also exists in a **batched** form that takes tensors with
one extra leading batch axis ``N`` (feature maps ``(N, C, H, W)``,
dense activations ``(N, features)``) and computes all samples in a
single NumPy call — that amortises per-call dispatch overhead, which on
the paper's micro cells dominates kernel compute. The batched kernels
are held to a *per-sample bitwise* contract: row ``b`` of a batched
result equals the unbatched kernel applied to row ``b`` of the inputs,
bit for bit. Each implementation therefore reproduces the unbatched
float-operation order per sample (same einsum contraction axis, same
ufunc chains, matrix–vector products kept per sample under matmul
broadcasting rather than reassociated into one GEMM); the batched
parity suite in ``tests/runtime`` asserts the contract over every
operator and suite cell.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import ExecutionError
from repro.ops.base import conv_output_hw, normalize_pair

__all__ = [
    "pad_same",
    "conv2d",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "batched_conv2d",
    "batched_depthwise_conv2d",
    "KERNELS",
    "OUT_KERNELS",
    "BATCH_KERNELS",
    "BATCH_OUT_KERNELS",
]


def _padding_amounts(
    h: int, w: int, kernel: tuple[int, int], stride: tuple[int, int], padding
) -> tuple[tuple[int, int], tuple[int, int]]:
    """TensorFlow-convention padding: asymmetric ``same``, zero ``valid``,
    symmetric explicit."""
    kh, kw = kernel
    sh, sw = stride
    if padding == "same":
        oh, ow = conv_output_hw(h, w, kernel, stride, "same")
        ph = max((oh - 1) * sh + kh - h, 0)
        pw = max((ow - 1) * sw + kw - w, 0)
        return (ph // 2, ph - ph // 2), (pw // 2, pw - pw // 2)
    if padding == "valid":
        return (0, 0), (0, 0)
    ph, pw = (padding, padding) if isinstance(padding, int) else normalize_pair(
        padding, "padding"
    )
    return (ph, ph), (pw, pw)


def _padded(x: np.ndarray, pt: int, pb: int, pl: int, pr: int, fill: float):
    """Constant-pad a (C, H, W) map (cheaper than ``np.pad`` on the
    micro feature maps these networks run on; same bytes out)."""
    c, h, w = x.shape
    if fill == 0.0:
        xp = np.zeros((c, h + pt + pb, w + pl + pr), dtype=x.dtype)
    else:
        xp = np.full((c, h + pt + pb, w + pl + pr), fill, dtype=x.dtype)
    xp[:, pt : pt + h, pl : pl + w] = x
    return xp


def pad_same(x: np.ndarray, kernel, stride, padding) -> np.ndarray:
    """Zero-pad a (C, H, W) map for the requested padding mode."""
    (pt, pb), (pl, pr) = _padding_amounts(
        x.shape[1], x.shape[2], kernel, stride, padding
    )
    if pt == pb == pl == pr == 0:
        return x
    return _padded(x, pt, pb, pl, pr, 0.0)


def _tap_view(xp: np.ndarray, u: int, v: int, oh: int, ow: int, sh: int, sw: int):
    """The (C, oh, ow) input window hitting kernel tap (u, v)."""
    return xp[:, u : u + oh * sh : sh, v : v + ow * sw : sw]


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride=1,
    padding="same",
) -> np.ndarray:
    """Standard convolution: ``(C,H,W) x (M,C,kh,kw) -> (M,oh,ow)``."""
    kernel = weight.shape[2], weight.shape[3]
    stride = normalize_pair(stride, "stride")
    oh, ow = conv_output_hw(x.shape[1], x.shape[2], kernel, stride, padding)
    xp = pad_same(x, kernel, stride, padding)
    out = np.zeros((weight.shape[0], oh, ow), dtype=np.result_type(x, weight))
    for u in range(kernel[0]):
        for v in range(kernel[1]):
            window = _tap_view(xp, u, v, oh, ow, *stride)
            out += np.einsum("chw,mc->mhw", window, weight[:, :, u, v])
    if bias is not None:
        out += bias[:, None, None]
    return out


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride=1,
    padding="same",
) -> np.ndarray:
    """Depthwise convolution: ``(C,H,W) x (C,mult,kh,kw) -> (C*mult,oh,ow)``.

    Output channel ``c*mult + t`` convolves input channel ``c`` with
    kernel ``weight[c, t]`` (the TensorFlow depthwise layout).
    """
    c, mult = weight.shape[0], weight.shape[1]
    kernel = weight.shape[2], weight.shape[3]
    stride = normalize_pair(stride, "stride")
    oh, ow = conv_output_hw(x.shape[1], x.shape[2], kernel, stride, padding)
    xp = pad_same(x, kernel, stride, padding)
    out = np.zeros((c, mult, oh, ow), dtype=np.result_type(x, weight))
    for u in range(kernel[0]):
        for v in range(kernel[1]):
            window = _tap_view(xp, u, v, oh, ow, *stride)  # (C, oh, ow)
            out += window[:, None] * weight[:, :, u, v][:, :, None, None]
    out = out.reshape(c * mult, oh, ow)
    if bias is not None:
        out += bias[:, None, None]
    return out


def _pool(x: np.ndarray, attrs: dict[str, Any], reducer) -> np.ndarray:
    kernel = normalize_pair(attrs.get("kernel", 2), "kernel")
    stride = normalize_pair(attrs.get("stride", kernel), "stride")
    padding = attrs.get("padding", "valid")
    oh, ow = conv_output_hw(x.shape[1], x.shape[2], kernel, stride, padding)
    if padding == "valid":
        xp = x
    else:
        fill = -np.inf if reducer is np.maximum else 0.0
        (pt, pb), (pl, pr) = _padding_amounts(
            x.shape[1], x.shape[2], kernel, stride, padding
        )
        xp = _padded(x, pt, pb, pl, pr, fill)
    taps = [
        _tap_view(xp, u, v, oh, ow, *stride)
        for u in range(kernel[0])
        for v in range(kernel[1])
    ]
    stacked = np.stack(taps)
    if reducer is np.maximum:
        return stacked.max(axis=0)
    # average pooling divides by the window size (zero-padded taps count,
    # matching TF's ``avg_pool`` with padding='SAME' semantics on counts
    # only for 'valid'; models here pool with 'valid')
    return stacked.mean(axis=0)


def max_pool2d(x: np.ndarray, attrs: dict[str, Any]) -> np.ndarray:
    return _pool(x, attrs, np.maximum)


def avg_pool2d(x: np.ndarray, attrs: dict[str, Any]) -> np.ndarray:
    return _pool(x, attrs, np.add)


# ----------------------------------------------------------------------
# dispatch table: op name -> fn(inputs, attrs, params) -> np.ndarray
# ----------------------------------------------------------------------
def _k_input(inputs, attrs, params):
    raise ExecutionError("input nodes must be fed, not executed")


def _k_conv2d(inputs, attrs, params):
    return conv2d(
        inputs[0],
        params["weight"],
        params.get("bias"),
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )


def _k_partial_conv2d(inputs, attrs, params):
    out = conv2d(
        inputs[0],
        params["weight"],
        params.get("bias"),
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )
    if attrs.get("accumulate", False):
        out = out + inputs[1]
    return out


def _k_depthwise(inputs, attrs, params):
    return depthwise_conv2d(
        inputs[0],
        params["weight"],
        params.get("bias"),
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )


def _k_concat(inputs, attrs, params):
    return np.concatenate(inputs, axis=0)


def _k_add(inputs, attrs, params):
    out = inputs[0]
    for x in inputs[1:]:
        out = out + x
    return out


def _k_mul(inputs, attrs, params):
    out = inputs[0]
    for x in inputs[1:]:
        out = out * x
    return out


def _k_batch_norm(inputs, attrs, params):
    scale = params["scale"][:, None, None]
    shift = params["shift"][:, None, None]
    return inputs[0] * scale + shift


def _k_fused_sep(inputs, attrs, params):
    mid = depthwise_conv2d(
        inputs[0],
        params["dw_weight"],
        None,
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )
    return conv2d(mid, params["pw_weight"], params.get("bias"), stride=1, padding="same")


def _k_dense(inputs, attrs, params):
    out = params["weight"] @ inputs[0]
    bias = params.get("bias")
    return out + bias if bias is not None else out


# ----------------------------------------------------------------------
# destination-write variants: fn(inputs, attrs, params, out) -> None
# ----------------------------------------------------------------------
# These write their result directly into ``out`` (an arena view) instead
# of materialising a temporary that the executor then copies. Each one
# reproduces its KERNELS counterpart's float operations in the same
# order, so results are bitwise-identical to the copy path — the
# PlanExecutor parity suite depends on that. Only ops whose ufunc chain
# can target ``out`` safely are here; everything else (convs, pools,
# dense) keeps the temporary-then-copy fallback.


def _o_add(inputs, attrs, params, out):
    if len(inputs) == 1:
        np.copyto(out, inputs[0])
        return
    np.add(inputs[0], inputs[1], out=out)
    for x in inputs[2:]:
        np.add(out, x, out=out)


def _o_mul(inputs, attrs, params, out):
    if len(inputs) == 1:
        np.copyto(out, inputs[0])
        return
    np.multiply(inputs[0], inputs[1], out=out)
    for x in inputs[2:]:
        np.multiply(out, x, out=out)


def _o_sigmoid(inputs, attrs, params, out):
    # same op sequence as 1.0 / (1.0 + np.exp(-x)), step by step
    np.negative(inputs[0], out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)


def _o_batch_norm(inputs, attrs, params, out):
    np.multiply(inputs[0], params["scale"][:, None, None], out=out)
    np.add(out, params["shift"][:, None, None], out=out)


def _o_concat(inputs, attrs, params, out):
    lo = 0
    for x in inputs:
        out[lo : lo + x.shape[0]] = x
        lo += x.shape[0]
    if lo != out.shape[0]:
        raise ExecutionError(
            f"concat operands fill {lo} of {out.shape[0]} output channels"
        )


def _o_flatten(inputs, attrs, params, out):
    np.copyto(out, inputs[0].reshape(-1))


def _o_slice_channels(inputs, attrs, params, out):
    lo, hi = attrs["range"]
    np.copyto(out, inputs[0][lo:hi])


OUT_KERNELS = {
    "add": _o_add,
    "mul": _o_mul,
    "relu": lambda i, a, p, out: np.maximum(i[0], 0.0, out=out),
    "relu6": lambda i, a, p, out: np.clip(i[0], 0.0, 6.0, out=out),
    "sigmoid": _o_sigmoid,
    "tanh": lambda i, a, p, out: np.tanh(i[0], out=out),
    "identity": lambda i, a, p, out: np.copyto(out, i[0]),
    "batch_norm": _o_batch_norm,
    "concat": _o_concat,
    "flatten": _o_flatten,
    "slice_channels": _o_slice_channels,
}


# ----------------------------------------------------------------------
# batched kernels: one leading batch axis, one NumPy call per node
# ----------------------------------------------------------------------
# Feature maps are (N, C, H, W); dense activations (N, features).
# Per-sample bitwise parity with the unbatched kernels is load-bearing
# (the serving layer scatters a stacked run back to individual requests
# that are verified against the reference executor), so reductions keep
# the unbatched contraction order per sample: einsum contracts the same
# axis, pooling reduces the same tap axis, and dense stays a broadcast
# stack of matrix–vector products instead of one reassociated GEMM.


def _batched_padded(
    x: np.ndarray, pt: int, pb: int, pl: int, pr: int, fill: float
) -> np.ndarray:
    """Constant-pad the spatial dims of a (N, C, H, W) stack."""
    n, c, h, w = x.shape
    if fill == 0.0:
        xp = np.zeros((n, c, h + pt + pb, w + pl + pr), dtype=x.dtype)
    else:
        xp = np.full((n, c, h + pt + pb, w + pl + pr), fill, dtype=x.dtype)
    xp[:, :, pt : pt + h, pl : pl + w] = x
    return xp


def _batched_pad_same(x: np.ndarray, kernel, stride, padding) -> np.ndarray:
    (pt, pb), (pl, pr) = _padding_amounts(
        x.shape[2], x.shape[3], kernel, stride, padding
    )
    if pt == pb == pl == pr == 0:
        return x
    return _batched_padded(x, pt, pb, pl, pr, 0.0)


def _batched_tap_view(
    xp: np.ndarray, u: int, v: int, oh: int, ow: int, sh: int, sw: int
) -> np.ndarray:
    """The (N, C, oh, ow) input window hitting kernel tap (u, v)."""
    return xp[:, :, u : u + oh * sh : sh, v : v + ow * sw : sw]


def batched_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride=1,
    padding="same",
) -> np.ndarray:
    """Batched convolution: ``(N,C,H,W) x (M,C,kh,kw) -> (N,M,oh,ow)``."""
    kernel = weight.shape[2], weight.shape[3]
    stride = normalize_pair(stride, "stride")
    oh, ow = conv_output_hw(x.shape[2], x.shape[3], kernel, stride, padding)
    xp = _batched_pad_same(x, kernel, stride, padding)
    out = np.zeros(
        (x.shape[0], weight.shape[0], oh, ow), dtype=np.result_type(x, weight)
    )
    for u in range(kernel[0]):
        for v in range(kernel[1]):
            window = _batched_tap_view(xp, u, v, oh, ow, *stride)
            out += np.einsum("bchw,mc->bmhw", window, weight[:, :, u, v])
    if bias is not None:
        out += bias[:, None, None]
    return out


def batched_depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride=1,
    padding="same",
) -> np.ndarray:
    """Batched depthwise conv: ``(N,C,H,W) x (C,mult,kh,kw) -> (N,C*mult,oh,ow)``."""
    c, mult = weight.shape[0], weight.shape[1]
    kernel = weight.shape[2], weight.shape[3]
    stride = normalize_pair(stride, "stride")
    oh, ow = conv_output_hw(x.shape[2], x.shape[3], kernel, stride, padding)
    xp = _batched_pad_same(x, kernel, stride, padding)
    out = np.zeros((x.shape[0], c, mult, oh, ow), dtype=np.result_type(x, weight))
    for u in range(kernel[0]):
        for v in range(kernel[1]):
            window = _batched_tap_view(xp, u, v, oh, ow, *stride)  # (N,C,oh,ow)
            out += window[:, :, None] * weight[:, :, u, v][None, :, :, None, None]
    out = out.reshape(x.shape[0], c * mult, oh, ow)
    if bias is not None:
        out += bias[:, None, None]
    return out


def _batched_pool(x: np.ndarray, attrs: dict[str, Any], reducer) -> np.ndarray:
    kernel = normalize_pair(attrs.get("kernel", 2), "kernel")
    stride = normalize_pair(attrs.get("stride", kernel), "stride")
    padding = attrs.get("padding", "valid")
    oh, ow = conv_output_hw(x.shape[2], x.shape[3], kernel, stride, padding)
    if padding == "valid":
        xp = x
    else:
        fill = -np.inf if reducer is np.maximum else 0.0
        (pt, pb), (pl, pr) = _padding_amounts(
            x.shape[2], x.shape[3], kernel, stride, padding
        )
        xp = _batched_padded(x, pt, pb, pl, pr, fill)
    taps = [
        _batched_tap_view(xp, u, v, oh, ow, *stride)
        for u in range(kernel[0])
        for v in range(kernel[1])
    ]
    stacked = np.stack(taps)  # (taps, N, C, oh, ow): same reduction axis
    if reducer is np.maximum:
        return stacked.max(axis=0)
    return stacked.mean(axis=0)


def _bk_conv2d(inputs, attrs, params):
    return batched_conv2d(
        inputs[0],
        params["weight"],
        params.get("bias"),
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )


def _bk_partial_conv2d(inputs, attrs, params):
    out = batched_conv2d(
        inputs[0],
        params["weight"],
        params.get("bias"),
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )
    if attrs.get("accumulate", False):
        out = out + inputs[1]
    return out


def _bk_depthwise(inputs, attrs, params):
    return batched_depthwise_conv2d(
        inputs[0],
        params["weight"],
        params.get("bias"),
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )


def _bk_fused_sep(inputs, attrs, params):
    mid = batched_depthwise_conv2d(
        inputs[0],
        params["dw_weight"],
        None,
        stride=attrs.get("stride", 1),
        padding=attrs.get("padding", "same"),
    )
    return batched_conv2d(
        mid, params["pw_weight"], params.get("bias"), stride=1, padding="same"
    )


def _bk_dense(inputs, attrs, params):
    # (units, features) @ (N, features, 1) broadcasts to N independent
    # matrix-vector products — bitwise the unbatched ``weight @ x`` per
    # sample, which one reassociated (N,features) GEMM would not be
    out = np.matmul(params["weight"], inputs[0][:, :, None])[:, :, 0]
    bias = params.get("bias")
    return out + bias if bias is not None else out


def _bk_batch_norm(inputs, attrs, params):
    scale = params["scale"][:, None, None]
    shift = params["shift"][:, None, None]
    return inputs[0] * scale + shift


#: batched op dispatch: fn(inputs, attrs, params) -> (N, ...) ndarray.
#: Positionwise ops reuse the unbatched callables outright — an extra
#: leading axis changes nothing about an elementwise ufunc chain.
BATCH_KERNELS = {
    "input": _k_input,
    "conv2d": _bk_conv2d,
    "partial_conv2d": _bk_partial_conv2d,
    "depthwise_conv2d": _bk_depthwise,
    "partial_depthwise_conv2d": _bk_depthwise,
    "fused_sep_conv3x3": _bk_fused_sep,
    "concat": lambda i, a, p: np.concatenate(i, axis=1),
    "add": _k_add,
    "mul": _k_mul,
    "relu": lambda i, a, p: np.maximum(i[0], 0.0),
    "relu6": lambda i, a, p: np.clip(i[0], 0.0, 6.0),
    "sigmoid": lambda i, a, p: 1.0 / (1.0 + np.exp(-i[0])),
    "tanh": lambda i, a, p: np.tanh(i[0]),
    "identity": lambda i, a, p: i[0],
    "batch_norm": _bk_batch_norm,
    "max_pool2d": lambda i, a, p: _batched_pool(i[0], a, np.maximum),
    "avg_pool2d": lambda i, a, p: _batched_pool(i[0], a, np.add),
    "global_avg_pool": lambda i, a, p: i[0].mean(axis=(2, 3), keepdims=True),
    "flatten": lambda i, a, p: i[0].reshape(i[0].shape[0], -1),
    "dense": _bk_dense,
    "slice_channels": lambda i, a, p: i[0][:, a["range"][0] : a["range"][1]],
}


def _bo_concat(inputs, attrs, params, out):
    lo = 0
    for x in inputs:
        out[:, lo : lo + x.shape[1]] = x
        lo += x.shape[1]
    if lo != out.shape[1]:
        raise ExecutionError(
            f"concat operands fill {lo} of {out.shape[1]} output channels"
        )


#: batched destination-write variants. The elementwise entries are the
#: unbatched callables unchanged (``out=`` ufuncs are shape-generic and
#: batch_norm's (C, 1, 1) factors broadcast across the batch axis); only
#: the layout ops need to respect the shifted channel axis.
BATCH_OUT_KERNELS = {
    "add": _o_add,
    "mul": _o_mul,
    "relu": OUT_KERNELS["relu"],
    "relu6": OUT_KERNELS["relu6"],
    "sigmoid": _o_sigmoid,
    "tanh": OUT_KERNELS["tanh"],
    "identity": OUT_KERNELS["identity"],
    "batch_norm": _o_batch_norm,
    "concat": _bo_concat,
    "flatten": lambda i, a, p, out: np.copyto(out, i[0].reshape(out.shape)),
    "slice_channels": lambda i, a, p, out: np.copyto(
        out, i[0][:, a["range"][0] : a["range"][1]]
    ),
}


KERNELS = {
    "input": _k_input,
    "conv2d": _k_conv2d,
    "partial_conv2d": _k_partial_conv2d,
    "depthwise_conv2d": _k_depthwise,
    "partial_depthwise_conv2d": _k_depthwise,
    "fused_sep_conv3x3": _k_fused_sep,
    "concat": _k_concat,
    "add": _k_add,
    "mul": _k_mul,
    "relu": lambda i, a, p: np.maximum(i[0], 0.0),
    "relu6": lambda i, a, p: np.clip(i[0], 0.0, 6.0),
    "sigmoid": lambda i, a, p: 1.0 / (1.0 + np.exp(-i[0])),
    "tanh": lambda i, a, p: np.tanh(i[0]),
    "identity": lambda i, a, p: i[0],
    "batch_norm": _k_batch_norm,
    "max_pool2d": lambda i, a, p: max_pool2d(i[0], a),
    "avg_pool2d": lambda i, a, p: avg_pool2d(i[0], a),
    "global_avg_pool": lambda i, a, p: i[0].mean(axis=(1, 2), keepdims=True),
    "flatten": lambda i, a, p: i[0].reshape(-1),
    "dense": _k_dense,
    "slice_channels": lambda i, a, p: i[0][a["range"][0] : a["range"][1]],
}
