"""Property-based tests of the memory substrates (allocator, memsim,
serialization, rewriting equivalence)."""

import random

from hypothesis import given, settings, strategies as st

from repro.allocator.arena import plan_allocation
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.memsim.hierarchy import offchip_traffic
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.topological import random_topological

from tests.conftest import random_dag_graph

dag = st.builds(
    random_dag_graph,
    n_nodes=st.integers(2, 12),
    seed=st.integers(0, 10_000),
    with_views=st.booleans(),
)


@settings(max_examples=50, deadline=None)
@given(g=dag, seed=st.integers(0, 100), strategy=st.sampled_from(["first_fit", "greedy_by_size"]))
def test_allocation_plans_are_sound(g, seed, strategy):
    """Plans never overlap live buffers (validate() is exhaustive) and
    never beat the sum-of-live lower bound."""
    sched = random_topological(g, random.Random(seed))
    plan = plan_allocation(g, sched, strategy)  # .validate() runs inside
    peak = simulate_schedule(g, sched).peak_bytes
    assert plan.arena_bytes >= peak


@settings(max_examples=30, deadline=None)
@given(g=dag, seed=st.integers(0, 100))
def test_policies_agree_when_everything_fits(g, seed):
    """With capacity above the total working set no policy ever evicts,
    so all policies produce identical (zero) traffic."""
    sched = random_topological(g, random.Random(seed))
    cap = g.total_activation_bytes() + 1
    results = {
        policy: offchip_traffic(
            g, sched, capacity_bytes=cap, policy=policy, tile_bytes=16
        ).total_bytes
        for policy in ("belady", "lru", "fifo")
    }
    assert results["belady"] == results["lru"] == results["fifo"] == 0


def test_belady_beats_reactive_policies_statistically():
    """Belady-MIN is not universally optimal under write-back cost
    asymmetry (see policies.py), but across many random workloads the
    clairvoyant policy must dominate in aggregate and win or tie in the
    overwhelming majority of cases."""
    totals = {"belady": 0, "lru": 0, "fifo": 0}
    wins_or_ties = 0
    cases = 40
    for seed in range(cases):
        g = random_dag_graph(12, seed, max_bytes_scale=8)
        sched = random_topological(g, random.Random(seed))
        case = {
            policy: offchip_traffic(
                g, sched, capacity_bytes=96, policy=policy, tile_bytes=16
            ).total_bytes
            for policy in totals
        }
        for policy, value in case.items():
            totals[policy] += value
        if case["belady"] <= min(case["lru"], case["fifo"]):
            wins_or_ties += 1
    assert totals["belady"] <= totals["lru"]
    assert totals["belady"] <= totals["fifo"]
    assert wins_or_ties >= 0.75 * cases


@settings(max_examples=30, deadline=None)
@given(g=dag, seed=st.integers(0, 100))
def test_larger_capacity_never_increases_traffic(g, seed):
    sched = random_topological(g, random.Random(seed))
    traffics = [
        offchip_traffic(g, sched, cap, tile_bytes=16).total_bytes
        for cap in (64, 128, 256, 10**9)
    ]
    assert all(a >= b for a, b in zip(traffics, traffics[1:]))
    assert traffics[-1] == 0


@settings(max_examples=50, deadline=None)
@given(g=dag)
def test_serialization_round_trip(g):
    assert graph_from_dict(graph_to_dict(g)) == g


conv_pattern = st.tuples(
    st.integers(2, 4),            # branches
    st.integers(1, 3),            # kernel
    st.sampled_from([1, 2]),      # stride
    st.booleans(),                # bias
)


@settings(max_examples=25, deadline=None)
@given(pattern=conv_pattern, seed=st.integers(0, 50))
def test_channel_wise_rewrite_is_identity(pattern, seed):
    """conv(concat(xs), W) == sum_i conv(x_i, W_i) on random weights."""
    branches, kernel, stride, bias = pattern
    from repro.graph.builder import GraphBuilder
    from repro.rewriting.rewriter import rewrite_graph
    from repro.runtime.verify import verify_rewrite

    rng = random.Random(seed)
    b = GraphBuilder("prop-cc")
    x = b.input("x", (rng.randint(1, 3), 6, 6))
    xs = [
        b.conv2d(x, rng.randint(1, 4), kernel=1, name=f"b{i}")
        for i in range(branches)
    ]
    cat = b.concat(xs, name="cat")
    b.conv2d(
        cat, rng.randint(1, 4), kernel=kernel, stride=stride,
        use_bias=bias, name="head",
    )
    g = b.build()
    res = rewrite_graph(g)
    assert res.applied == 1
    assert verify_rewrite(g, res, seed=seed).equivalent


@settings(max_examples=25, deadline=None)
@given(
    branches=st.integers(2, 4),
    multiplier=st.integers(1, 2),
    kernel=st.sampled_from([3, 5]),
    seed=st.integers(0, 50),
)
def test_kernel_wise_rewrite_is_identity(branches, multiplier, kernel, seed):
    """dwconv(concat(xs)) == concat(dwconv_i(x_i)) on random weights."""
    from repro.graph.builder import GraphBuilder
    from repro.rewriting.rewriter import rewrite_graph
    from repro.runtime.verify import verify_rewrite

    rng = random.Random(seed)
    b = GraphBuilder("prop-kw")
    x = b.input("x", (rng.randint(1, 3), 6, 6))
    xs = [
        b.conv2d(x, rng.randint(1, 4), kernel=1, name=f"b{i}")
        for i in range(branches)
    ]
    cat = b.concat(xs, name="cat")
    b.depthwise_conv2d(cat, kernel=kernel, multiplier=multiplier, name="head")
    g = b.build()
    res = rewrite_graph(g)
    assert res.applied == 1
    assert verify_rewrite(g, res, seed=seed).equivalent


@settings(max_examples=25, deadline=None)
@given(branches=st.integers(2, 5), seed=st.integers(0, 50))
def test_rewriting_never_hurts_optimal_peak_on_patterns(branches, seed):
    """On the motivating patterns (view-marked, as the models are) the
    rewritten graph's optimal peak is never worse."""
    from repro.graph.builder import GraphBuilder
    from repro.graph.transforms import mark_concat_views
    from repro.rewriting.rewriter import rewrite_graph

    rng = random.Random(seed)
    b = GraphBuilder("prop-peak")
    x = b.input("x", (rng.randint(1, 3), 8, 8))
    xs = [
        b.conv2d(x, rng.randint(1, 4), kernel=1, name=f"b{i}")
        for i in range(branches)
    ]
    cat = b.concat(xs, name="cat")
    b.conv2d(cat, rng.randint(1, 4), kernel=3, name="head")
    g = mark_concat_views(b.build())
    before = dp_schedule(g).peak_bytes
    after = dp_schedule(rewrite_graph(g).graph).peak_bytes
    assert after <= before
