"""Memory-oblivious baseline schedulers.

These are the orderings the paper compares against (Section 2.2):
deep-learning frameworks schedule with "basic topological ordering
algorithms" — Kahn's algorithm in particular (TensorFlow Lite executes
operators in flatbuffer order, which is the converter's topological
order; our ``insertion`` tie-break reproduces that behaviour since graph
insertion order *is* the original model order).

Also provides random-tie-break sampling and full enumeration of
topological orders, used by the schedule-space CDF study (Fig 3(b)) and
by the brute-force optimality oracle in the tests.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Iterator

from repro.exceptions import SchedulingError
from repro.graph.graph import Graph
from repro.scheduler.schedule import Schedule

__all__ = [
    "kahn_schedule",
    "dfs_schedule",
    "random_topological",
    "iter_topological_orders",
    "count_topological_orders",
]


def _degrees(graph: Graph) -> dict[str, int]:
    return {name: graph.in_degree(name) for name in graph.node_names}


def kahn_schedule(graph: Graph, tie_break: str = "insertion") -> Schedule:
    """Kahn's algorithm (Kahn, 1962) with a deterministic tie-break.

    ``insertion``
        always pick the ready node that appears earliest in the graph's
        original order — the TFLite-like baseline used throughout the
        experiments.
    ``lexicographic``
        pick the lexicographically smallest ready node name.
    ``fifo``
        classic queue-based Kahn: nodes become ready in discovery order.
    """
    order_index = {name: i for i, name in enumerate(graph.node_names)}
    indeg = _degrees(graph)
    out: list[str] = []

    if tie_break == "fifo":
        queue: deque[str] = deque(n for n in graph.node_names if indeg[n] == 0)
        while queue:
            name = queue.popleft()
            out.append(name)
            for succ in graph.succs(name):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
    else:
        if tie_break == "insertion":
            key = order_index.__getitem__
        elif tie_break == "lexicographic":
            key = lambda name: name  # noqa: E731
        else:
            raise SchedulingError(f"unknown tie_break {tie_break!r}")
        heap = [(key(n), n) for n in graph.node_names if indeg[n] == 0]
        heapq.heapify(heap)
        while heap:
            _, name = heapq.heappop(heap)
            out.append(name)
            for succ in graph.succs(name):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(heap, (key(succ), succ))

    if len(out) != len(graph):
        raise SchedulingError("graph contains a cycle")  # pragma: no cover
    return Schedule(tuple(out), graph.name)


def dfs_schedule(graph: Graph) -> Schedule:
    """Depth-first topological order: like Kahn's algorithm but popping
    the *most recently readied* node (LIFO), i.e. the ordering an eager
    recursive code generator would emit. Chases one branch to the point
    it blocks before returning to siblings — typically a poor but not
    adversarial footprint, a useful contrast to breadth-flavoured Kahn."""
    indeg = _degrees(graph)
    stack = [n for n in reversed(graph.node_names) if indeg[n] == 0]
    out: list[str] = []
    while stack:
        name = stack.pop()
        out.append(name)
        for succ in reversed(graph.succs(name)):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                stack.append(succ)
    if len(out) != len(graph):
        raise SchedulingError("graph contains a cycle")  # pragma: no cover
    return Schedule(tuple(out), graph.name)


def random_topological(graph: Graph, rng: random.Random) -> Schedule:
    """One topological order sampled by uniformly random tie-breaking.

    (Not uniform over the set of all topological orders — no cheap
    algorithm is — but an unbiased "pick any ready node" process, which
    is what the paper's Fig 3(b) schedule population represents.)
    """
    indeg = _degrees(graph)
    ready = [n for n in graph.node_names if indeg[n] == 0]
    out: list[str] = []
    while ready:
        i = rng.randrange(len(ready))
        ready[i], ready[-1] = ready[-1], ready[i]
        name = ready.pop()
        out.append(name)
        for succ in graph.succs(name):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    if len(out) != len(graph):
        raise SchedulingError("graph contains a cycle")  # pragma: no cover
    return Schedule(tuple(out), graph.name)


def iter_topological_orders(
    graph: Graph, limit: int | None = None
) -> Iterator[tuple[str, ...]]:
    """Enumerate topological orders by backtracking (lexicographic in
    insertion order). ``limit`` caps the number yielded."""
    indeg = _degrees(graph)
    names = graph.node_names
    prefix: list[str] = []
    produced = 0

    def backtrack() -> Iterator[tuple[str, ...]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if len(prefix) == len(names):
            produced += 1
            yield tuple(prefix)
            return
        for name in names:
            if indeg[name] != 0:
                continue
            indeg[name] = -1  # claimed
            for succ in graph.succs(name):
                indeg[succ] -= 1
            prefix.append(name)
            yield from backtrack()
            prefix.pop()
            for succ in graph.succs(name):
                indeg[succ] += 1
            indeg[name] = 0
            if limit is not None and produced >= limit:
                return

    return backtrack()


def count_topological_orders(graph: Graph, cap: int = 10_000_000) -> int:
    """Number of topological orders (stops counting at ``cap``)."""
    count = 0
    for _ in iter_topological_orders(graph, limit=cap):
        count += 1
    return count
