"""Device-targeted compilation (fit_to_device escalation)."""


from repro.scheduler.device import (
    AMBIQ_APOLLO3,
    KNOWN_DEVICES,
    SPARKFUN_EDGE,
    DeviceSpec,
    fit_to_device,
)


class TestDeviceSpecs:
    def test_sparkfun_budget_matches_paper(self):
        assert SPARKFUN_EDGE.sram_bytes == 250 * 1024
        assert SPARKFUN_EDGE.sram_kib == 250.0

    def test_registry(self):
        assert KNOWN_DEVICES["SparkFun Edge"] is SPARKFUN_EDGE
        assert len(KNOWN_DEVICES) >= 3


class TestFitToDevice:
    def test_tiny_graph_fits_at_baseline(self, chain_graph):
        fit = fit_to_device(chain_graph, SPARKFUN_EDGE)
        assert fit.fits and fit.stage == "baseline"
        assert len(fit.stages) == 1  # stop_early skipped later stages

    def test_stop_early_false_measures_all(self, concat_conv_graph):
        fit = fit_to_device(concat_conv_graph, SPARKFUN_EDGE, stop_early=False)
        assert [s.name for s in fit.stages] == ["baseline", "dp", "dp+rewriting"]

    def test_escalation_monotone(self, concat_conv_graph):
        fit = fit_to_device(concat_conv_graph, SPARKFUN_EDGE, stop_early=False)
        by = {s.name: s for s in fit.stages}
        assert by["dp"].peak_bytes <= by["baseline"].peak_bytes
        assert by["dp+rewriting"].peak_bytes <= by["dp"].peak_bytes

    def test_impossible_budget_reported(self, concat_conv_graph):
        nano = DeviceSpec("nano", 64)
        fit = fit_to_device(concat_conv_graph, nano)
        assert not fit.fits
        assert fit.stage is None
        assert fit.headroom_bytes < 0

    def test_dp_stage_unlocks_midsize_device(self):
        """A budget between the baseline peak and the DP peak should be
        satisfied exactly at the 'dp' stage."""
        from repro.models.swiftnet import swiftnet_cell_a
        from repro.scheduler.topological import kahn_schedule
        from repro.allocator.arena import arena_peak_bytes
        from repro.scheduler.divide import DivideAndConquerScheduler

        g = swiftnet_cell_a()
        baseline = arena_peak_bytes(g, kahn_schedule(g))
        dp = DivideAndConquerScheduler().schedule(g)
        dp_arena = arena_peak_bytes(g, dp.schedule)
        assert dp_arena < baseline
        midsize = DeviceSpec("midsize", (dp_arena + baseline) // 2)
        fit = fit_to_device(g, midsize)
        assert fit.fits and fit.stage == "dp"

    def test_summary_text(self, chain_graph):
        fit = fit_to_device(chain_graph, AMBIQ_APOLLO3)
        text = fit.summary()
        assert "Apollo3" in text and "DEPLOYABLE" in text

    def test_best_stage_has_lowest_arena(self, concat_conv_graph):
        fit = fit_to_device(concat_conv_graph, SPARKFUN_EDGE, stop_early=False)
        assert fit.best.arena_bytes == min(s.arena_bytes for s in fit.stages)

    def test_schedules_are_valid(self, concat_conv_graph):
        fit = fit_to_device(concat_conv_graph, SPARKFUN_EDGE, stop_early=False)
        by = {s.name: s for s in fit.stages}
        by["baseline"].schedule.validate(concat_conv_graph)
        by["dp"].schedule.validate(concat_conv_graph)
