"""Schedule-space analysis: the peak-memory CDF of Fig 3(b).

The paper samples the space of topological orders of SwiftNet Cell A and
reports that only 4.1 % of schedules fit the SparkFun Edge's 250 KB and
0.04 % achieve the optimal peak. We reproduce the study with either
exhaustive enumeration (small graphs) or random-tie-break sampling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel, simulate_schedule
from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import iter_topological_orders, random_topological

__all__ = ["ScheduleSpaceCDF", "sample_peak_cdf", "enumerate_peak_cdf"]

#: SparkFun Edge activation/weight memory (paper Section 2.2)
SPARKFUN_EDGE_BYTES = 250 * 1024


@dataclass(frozen=True)
class ScheduleSpaceCDF:
    """Peak footprints over a schedule population."""

    peaks: np.ndarray  # sorted ascending, bytes
    exhaustive: bool

    @property
    def n(self) -> int:
        return len(self.peaks)

    @property
    def optimal_bytes(self) -> int:
        return int(self.peaks[0])

    @property
    def worst_bytes(self) -> int:
        return int(self.peaks[-1])

    def fraction_within(self, budget_bytes: float) -> float:
        """Fraction of schedules whose peak fits ``budget_bytes`` —
        Fig 3(b)'s '4.1 % satisfy the constraint'."""
        return float(np.searchsorted(self.peaks, budget_bytes, "right")) / self.n

    def fraction_optimal(self) -> float:
        """Fraction achieving the minimum peak — the '0.04 % are
        optimal' figure."""
        return float(np.searchsorted(self.peaks, self.peaks[0], "right")) / self.n

    def cdf_points(self, resolution: int = 200) -> list[tuple[float, float]]:
        """(peak_kib, cumulative_fraction) pairs for plotting."""
        qs = np.linspace(0.0, 1.0, resolution)
        idx = np.minimum((qs * (self.n - 1)).astype(int), self.n - 1)
        return [(float(self.peaks[i]) / 1024.0, float(q)) for q, i in zip(qs, idx)]


def sample_peak_cdf(
    graph: Graph, samples: int = 2000, seed: int = 0
) -> ScheduleSpaceCDF:
    """Random-tie-break sampling of the topological-order space."""
    rng = random.Random(seed)
    model = BufferModel.of(graph)
    peaks = np.empty(samples, dtype=np.int64)
    for i in range(samples):
        sched = random_topological(graph, rng)
        peaks[i] = simulate_schedule(graph, sched, model=model, validate=False).peak_bytes
    peaks.sort()
    return ScheduleSpaceCDF(peaks=peaks, exhaustive=False)


def enumerate_peak_cdf(graph: Graph, limit: int = 250_000) -> ScheduleSpaceCDF:
    """Exhaustive enumeration (bounded by ``limit`` orders)."""
    model = BufferModel.of(graph)
    peaks = []
    for order in iter_topological_orders(graph, limit=limit):
        sched = Schedule(order, graph.name)
        peaks.append(
            simulate_schedule(graph, sched, model=model, validate=False).peak_bytes
        )
    arr = np.asarray(sorted(peaks), dtype=np.int64)
    return ScheduleSpaceCDF(peaks=arr, exhaustive=len(peaks) < limit)
