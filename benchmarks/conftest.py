"""Benchmark-suite fixtures.

Each benchmark regenerates one table/figure of the paper, saves the
rendered paper-vs-measured text under ``benchmarks/results/`` and
asserts the reproduction's qualitative claims. SERENITY compilations are
cached per process (``repro.experiments.common``), so the suite shares
one compilation of each cell across figures.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
