"""Graph (de)serialisation: JSON documents and networkx round-trips.

The JSON schema is intentionally simple and versioned so saved benchmark
graphs remain loadable:

.. code-block:: json

    {"format": "repro-graph/1", "name": "...", "nodes": [
        {"name": "x", "op": "input", "inputs": [],
         "shape": [8, 16, 16], "dtype": "float32",
         "attrs": {...}, "memory": {"view": false, "inplace_of": null}}
    ]}
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import DType, TensorSpec

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "graph_signature",
    "canonical_node_keys",
]

_FORMAT = "repro-graph/1"
_SIGNATURE_FORMAT = "repro-graph-sig/2"


def _attrs_to_json(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out


def _attrs_from_json(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, list):
            value = tuple(value)
        out[key] = value
    return out


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Serialise ``graph`` to a JSON-compatible dict."""
    return {
        "format": _FORMAT,
        "name": graph.name,
        "nodes": [
            {
                "name": n.name,
                "op": n.op,
                "inputs": list(n.inputs),
                "shape": list(n.output.shape),
                "dtype": n.output.dtype.value,
                "attrs": _attrs_to_json(n.attrs),
                "memory": {
                    "view": n.memory.view,
                    "inplace_of": n.memory.inplace_of,
                },
            }
            for n in graph
        ],
    }


def graph_from_dict(doc: dict[str, Any]) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    if doc.get("format") != _FORMAT:
        raise GraphError(f"unsupported graph format {doc.get('format')!r}")
    graph = Graph(doc.get("name", "graph"))
    for entry in doc["nodes"]:
        mem = entry.get("memory", {})
        graph.add(
            Node(
                name=entry["name"],
                op=entry["op"],
                inputs=tuple(entry["inputs"]),
                output=TensorSpec(
                    tuple(entry["shape"]), DType(entry.get("dtype", "float32"))
                ),
                attrs=_attrs_from_json(entry.get("attrs", {})),
                memory=MemorySemantics(
                    inplace_of=mem.get("inplace_of"), view=mem.get("view", False)
                ),
            )
        )
    return graph


def _sha(payload: list) -> str:
    doc = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode()).hexdigest()


def _canonical_digests(graph: Graph) -> dict[str, str]:
    """Per-node content digests, invariant under node renaming.

    Each node is hashed twice — downward (its payload plus its
    producers' digests, in argument order) and upward (its payload plus
    its consumers' digests with the input positions it feeds) — and the
    two are combined. The bidirectional pass matters: a purely downward
    Merkle hash cannot tell twin nodes apart, so it could not see which
    of two identical producers a consumer is wired to.
    """
    payloads = {
        node.name: [
            node.op,
            list(node.output.shape),
            node.output.dtype.value,
            _attrs_to_json(node.attrs),
            node.memory.view,
            node.memory.inplace_of,
        ]
        for node in graph
    }
    down: dict[str, str] = {}
    for node in graph:  # insertion order is topological: producers first
        down[node.name] = _sha(
            [payloads[node.name], [down[src] for src in node.inputs]]
        )
    up: dict[str, str] = {}
    for node in reversed(graph.nodes):  # consumers first
        context = sorted(
            _sha(
                [
                    up[succ],
                    [
                        i
                        for i, src in enumerate(graph.node(succ).inputs)
                        if src == node.name
                    ],
                ]
            )
            for succ in graph.succs(node.name)
        )
        up[node.name] = _sha([payloads[node.name], context])
    return {name: _sha([down[name], up[name]]) for name in down}


def graph_signature(graph: Graph) -> str:
    """Canonical content hash of a graph, stable across node renamings.

    Two graphs that compute the same thing — identical wiring, ops,
    tensor specs, attrs, and memory semantics — hash to the same
    signature even when their node names differ or independent nodes
    were inserted in a different (topological) order. This is the key of
    the persistent scheduling cache (:mod:`repro.scheduler.cache`): a
    schedule found for one instance of a graph can be replayed, via
    :func:`canonical_node_keys`, on every relabeling of it.

    The signature is the hash of the sorted multiset of the
    bidirectional per-node digests (see :func:`_canonical_digests`),
    which is invariant under any name/insertion-order permutation.
    Cache consumers must still validate a served schedule against the
    concrete graph — the multiset hash, like any Weisfeiler-Lehman
    style invariant, is not a proof of isomorphism.
    """
    digests = _canonical_digests(graph)
    top = json.dumps(
        [_SIGNATURE_FORMAT, len(graph), sorted(digests.values())],
        separators=(",", ":"),
    )
    return hashlib.sha256(top.encode()).hexdigest()


def canonical_node_keys(graph: Graph) -> dict[str, str]:
    """Rename-invariant key per node: content digest + duplicate rank.

    Nodes with identical digests (structural twins) are disambiguated
    by their rank in insertion order, so the mapping is always a
    bijection. Keys let a cached schedule recorded for one instance of
    a graph be translated onto a relabeled instance: equal signature +
    equal key sets ⇒ a candidate node mapping (which the consumer must
    then validate as a topological order).
    """
    digests = _canonical_digests(graph)
    seen: dict[str, int] = {}
    keys: dict[str, str] = {}
    for name in graph.node_names:
        digest = digests[name]
        rank = seen.get(digest, 0)
        seen[digest] = rank + 1
        keys[name] = f"{digest}:{rank}"
    return keys


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> Graph:
    """Load a graph saved by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
