"""Access traces, replacement policies, two-level memory simulation."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.memsim.hierarchy import MemoryHierarchySimulator, offchip_traffic
from repro.memsim.policies import BeladyPolicy, FIFOPolicy, LRUPolicy, make_policy
from repro.exceptions import ReproError
from repro.memsim.trace import (
    DEFAULT_TILE_BYTES,
    build_trace,
    resolve_tile_bytes,
    tile_spans,
)
from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import kahn_schedule, random_topological

from tests.conftest import random_dag_graph


@pytest.fixture
def chain_sched(chain_graph):
    return kahn_schedule(chain_graph)


class TestTrace:
    def test_reads_precede_write_per_step(self, chain_graph, chain_sched):
        trace = build_trace(chain_graph, chain_sched, tile_bytes=None)
        by_step = {}
        for i, acc in enumerate(trace.accesses):
            by_step.setdefault(acc.step, []).append(acc)
        for accs in by_step.values():
            kinds = [a.kind for a in accs]
            assert kinds == sorted(kinds)  # 'read' < 'write'

    def test_last_use_marked_once(self, chain_graph, chain_sched):
        trace = build_trace(chain_graph, chain_sched, tile_bytes=None)
        for obj, positions in trace.positions.items():
            flags = [trace.accesses[p].last_use for p in positions]
            assert sum(flags) <= 1
            assert not any(flags[:-1])

    def test_outputs_never_last_use(self, chain_graph, chain_sched):
        trace = build_trace(chain_graph, chain_sched, tile_bytes=None)
        sink_obj = [
            a for a in trace.accesses if a.node == "c2" and a.kind == "write"
        ]
        assert sink_obj and not sink_obj[0].last_use

    def test_view_resolution(self):
        """Reading a view concat reads the underlying tensors."""
        from repro.graph.transforms import mark_concat_views

        b = GraphBuilder("v")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 3, name="r")
        cat = b.concat([l, r], name="cat")
        b.conv2d(cat, 2, name="head")
        g = mark_concat_views(b.build())
        trace = build_trace(g, kahn_schedule(g), tile_bytes=None)
        head_reads = {
            a.buffer_id[0] for a in trace.accesses
            if a.node == "head" and a.kind == "read"
        }
        from repro.graph.analysis import GraphIndex

        idx = GraphIndex.build(g)
        assert head_reads == {idx.index["l"], idx.index["r"]}
        # the view itself performs no write
        assert not any(a.node == "cat" for a in trace.accesses)

    def test_tiling_splits_large_tensors(self, chain_graph, chain_sched):
        trace = build_trace(chain_graph, chain_sched, tile_bytes=256)
        c1_writes = [
            a for a in trace.accesses if a.node == "c1" and a.kind == "write"
        ]
        total = sum(a.size for a in c1_writes)
        assert total == chain_graph.node("c1").output_bytes
        assert all(a.size <= 256 for a in c1_writes)
        assert len(c1_writes) > 1

    def test_tile_remainder(self):
        b = GraphBuilder("r")
        b.input("x", (3, 5, 5))  # 300 bytes
        g = b.build()
        trace = build_trace(g, kahn_schedule(g), tile_bytes=256)
        sizes = [a.size for a in trace.accesses]
        assert sorted(sizes) == [44, 256]


class TestTileGeometry:
    """The shared tile geometry: simulator, spill planner, and tiled
    executor all partition buffers through the same two helpers, so
    these edge cases are load-bearing for every consumer at once."""

    def test_resolve_none_takes_callers_default(self):
        assert resolve_tile_bytes(None) == DEFAULT_TILE_BYTES
        # the spill planner's calling convention: None means untiled
        assert resolve_tile_bytes(None, default=None) is None

    def test_resolve_zero_means_whole_tensor(self):
        assert resolve_tile_bytes(0) is None
        assert resolve_tile_bytes(0, default=None) is None

    def test_resolve_positive_passthrough(self):
        assert resolve_tile_bytes(4096) == 4096
        assert resolve_tile_bytes(1) == 1

    def test_resolve_negative_rejected(self):
        with pytest.raises(ReproError, match="tile_bytes"):
            resolve_tile_bytes(-1)

    def test_spans_untiled_is_one_whole_span(self):
        assert tile_spans(300, None) == ((0, 300),)

    def test_spans_tensor_no_larger_than_tile(self):
        assert tile_spans(256, 256) == ((0, 256),)
        assert tile_spans(100, 256) == ((0, 100),)

    def test_spans_non_divisible_has_remainder(self):
        spans = tile_spans(300, 128)
        assert spans == ((0, 128), (128, 128), (256, 44))

    def test_spans_divisible_all_full(self):
        spans = tile_spans(512, 128)
        assert all(size == 128 for _, size in spans)
        assert len(spans) == 4

    def test_spans_are_contiguous_and_exhaustive(self):
        for total in (1, 44, 255, 256, 257, 300, 8192, 8193):
            for tile in (1, 7, 64, 256, None):
                spans = tile_spans(total, tile)
                cursor = 0
                for off, size in spans:
                    assert off == cursor and size > 0
                    cursor += size
                assert cursor == total

    def test_trace_sizes_match_tile_spans(self, chain_graph, chain_sched):
        """The trace builder's per-tensor access sizes are exactly the
        shared geometry's span sizes — no private re-derivation."""
        trace = build_trace(chain_graph, chain_sched, tile_bytes=256)
        for node in chain_graph.nodes:
            writes = [
                a.size
                for a in trace.accesses
                if a.node == node.name and a.kind == "write"
            ]
            if not writes:
                continue
            expected = [s for _, s in tile_spans(node.output_bytes, 256)]
            assert writes == expected


class TestPolicies:
    def _trace(self, graph):
        return build_trace(graph, kahn_schedule(graph), tile_bytes=None)

    def test_belady_next_use(self, chain_graph):
        trace = self._trace(chain_graph)
        policy = BeladyPolicy(trace)
        obj = trace.accesses[0].buffer_id
        first, *rest = trace.positions[obj]
        nxt = policy.next_use(obj, first)
        assert nxt == (rest[0] if rest else float("inf"))

    def test_belady_evicts_farthest(self):
        # two residents: one reused soon, one never again
        b = GraphBuilder("p")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        b.op("add", (x, l), name="j")
        g = b.build()
        trace = self._trace(g)
        policy = BeladyPolicy(trace)
        from repro.graph.analysis import GraphIndex

        idx = GraphIndex.build(g)
        xo, lo = (idx.index["x"], 0), (idx.index["l"], 0)
        victim = policy.victim({xo, lo}, position=2)
        # neither used after position 2's write of j except j itself...
        assert victim in {xo, lo}

    def test_lru_prefers_stale(self):
        policy = LRUPolicy()
        policy.on_access("a", 0)
        policy.on_access("b", 5)
        assert policy.victim({"a", "b"}, 6) == "a"

    def test_fifo_prefers_oldest_arrival(self):
        policy = FIFOPolicy()
        policy.on_access("a", 0)
        policy.on_access("b", 1)
        policy.on_access("a", 2)  # re-access must not refresh arrival
        assert policy.victim({"a", "b"}, 3) == "a"

    def test_make_policy_unknown(self, chain_graph):
        with pytest.raises(ValueError):
            make_policy("bogus", self._trace(chain_graph))


class TestHierarchy:
    def test_zero_traffic_when_everything_fits(self, chain_graph, chain_sched):
        report = offchip_traffic(
            chain_graph, chain_sched, capacity_bytes=10**9
        )
        assert report.total_bytes == 0
        assert report.eliminated

    def test_capacity_must_be_positive(self, chain_graph, chain_sched):
        from repro.exceptions import ReproError

        sim = MemoryHierarchySimulator(0)
        with pytest.raises(ReproError):
            sim.run(build_trace(chain_graph, chain_sched))

    def test_tiny_capacity_traffic_bounded_by_touched(self, chain_graph, chain_sched):
        trace = build_trace(chain_graph, chain_sched)
        report = MemoryHierarchySimulator(1024).run(trace)
        assert 0 < report.total_bytes <= 2 * trace.total_bytes_touched

    def test_writeback_only_when_reused(self):
        """A dirty tensor evicted after its final read is dropped."""
        b = GraphBuilder("wb")
        x = b.input("x", (2, 4, 4))
        b.conv2d(x, 2, name="c")
        g = b.build()
        report = offchip_traffic(g, kahn_schedule(g), 64, tile_bytes=0)
        # tensors are bigger than 64B -> all accesses bypass, but nothing
        # is ever written back as "needed again"
        assert report.writebacks == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_belady_not_worse_than_lru_or_fifo(self, seed):
        """Clairvoyant eviction beats reactive policies (uniform tile
        sizes make MIN provably optimal)."""
        import random

        g = random_dag_graph(12, seed, max_bytes_scale=8)
        sched = random_topological(g, random.Random(seed))
        cap = 128
        results = {
            policy: offchip_traffic(
                g, sched, cap, policy=policy, tile_bytes=16
            ).total_bytes
            for policy in ("belady", "lru", "fifo")
        }
        assert results["belady"] <= results["lru"]
        assert results["belady"] <= results["fifo"]

    def test_better_schedule_not_more_traffic_on_pattern(self):
        """On the motivating pattern, the DP schedule's traffic is no
        worse than an adversarial (max-liveness) order."""
        from repro.scheduler.dp import dp_schedule

        b = GraphBuilder("t")
        x = b.input("x", (2, 8, 8))
        branches = [b.conv2d(x, 4, kernel=3, name=f"b{i}") for i in range(4)]
        downs = [b.conv2d(br, 1, name=f"d{i}") for i, br in enumerate(branches)]
        b.concat(downs, name="cat")
        g = b.build()
        dp = dp_schedule(g).schedule
        bad = Schedule(
            ("x", "b0", "b1", "b2", "b3", "d0", "d1", "d2", "d3", "cat")
        )
        cap = 2 * 1024
        t_dp = offchip_traffic(g, dp, cap).total_bytes
        t_bad = offchip_traffic(g, bad, cap).total_bytes
        assert t_dp <= t_bad

    def test_report_fields(self, chain_graph, chain_sched):
        report = offchip_traffic(chain_graph, chain_sched, 4096)
        assert report.total_bytes == (
            report.bytes_in + report.bytes_out + report.bypass_bytes
        )
        assert report.total_kib == report.total_bytes / 1024.0
        assert report.accesses == len(build_trace(chain_graph, chain_sched))
