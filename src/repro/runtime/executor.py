"""Reference graph executor.

Evaluates a :class:`~repro.graph.graph.Graph` on NumPy tensors with
deterministic, name-keyed random parameters. Used by the tests and by
:mod:`repro.runtime.verify` to certify that identity graph rewriting
preserves the network's function exactly (paper: "not an approximation
method").
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import ExecutionError
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.ops.base import normalize_pair
from repro.runtime.kernels import KERNELS

__all__ = ["Executor", "init_params", "random_feeds"]

Params = dict[str, dict[str, np.ndarray]]


def _node_rng(seed: int, name: str) -> np.random.Generator:
    """Deterministic per-node generator (stable across processes)."""
    return np.random.default_rng((seed, zlib.crc32(name.encode())))


def _param_shapes(graph: Graph, node: Node) -> dict[str, tuple[int, ...]]:
    """Parameter tensors a node needs, by name."""
    attrs = node.attrs
    use_bias = bool(attrs.get("use_bias", True))
    if node.op in ("conv2d", "partial_conv2d"):
        c = graph.node(node.inputs[0]).output.shape[0]
        m = int(attrs["out_channels"])
        kh, kw = normalize_pair(attrs.get("kernel", 1), "kernel")
        shapes = {"weight": (m, c, kh, kw)}
        owns_bias = attrs.get("owns_bias", True) if node.op == "partial_conv2d" else True
        if use_bias and owns_bias:
            shapes["bias"] = (m,)
        return shapes
    if node.op == "fused_sep_conv3x3":
        c = graph.node(node.inputs[0]).output.shape[0]
        m = int(attrs.get("out_channels", c))
        kh, kw = normalize_pair(attrs.get("kernel", 3), "kernel")
        shapes = {"dw_weight": (c, 1, kh, kw), "pw_weight": (m, c, 1, 1)}
        if use_bias:
            shapes["bias"] = (m,)
        return shapes
    if node.op in ("depthwise_conv2d", "partial_depthwise_conv2d"):
        c = graph.node(node.inputs[0]).output.shape[0]
        mult = int(attrs.get("multiplier", 1))
        kh, kw = normalize_pair(attrs.get("kernel", 3), "kernel")
        shapes = {"weight": (c, mult, kh, kw)}
        if use_bias:
            shapes["bias"] = (c * mult,)
        return shapes
    if node.op == "dense":
        features = graph.node(node.inputs[0]).output.elements
        units = int(attrs["units"])
        shapes = {"weight": (units, features)}
        if use_bias:
            shapes["bias"] = (units,)
        return shapes
    if node.op == "batch_norm":
        c = graph.node(node.inputs[0]).output.shape[0]
        return {"scale": (c,), "shift": (c,)}
    return {}


def init_params(graph: Graph, seed: int = 0) -> Params:
    """Random parameters for every parameterised node (deterministic in
    ``seed`` and node names)."""
    params: Params = {}
    for node in graph:
        shapes = _param_shapes(graph, node)
        if not shapes:
            continue
        rng = _node_rng(seed, node.name)
        params[node.name] = {
            key: rng.standard_normal(shape).astype(np.float64) * 0.1
            for key, shape in shapes.items()
        }
    return params


def random_feeds(graph: Graph, seed: int = 0) -> dict[str, np.ndarray]:
    """Random activations for every ``input`` node."""
    feeds = {}
    for name in graph.input_nodes:
        spec = graph.node(name).output
        rng = _node_rng(seed ^ 0x5EED, name)
        feeds[name] = rng.standard_normal(spec.shape)
    return feeds


@dataclass
class Executor:
    """Evaluate a graph over NumPy tensors.

    >>> ex = Executor(graph)
    >>> outputs = ex.run(random_feeds(graph))
    """

    graph: Graph
    params: Params = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.params:
            self.params = init_params(self.graph, self.seed)

    def _needed(self, wanted: list[str]) -> set[str]:
        """Nodes reachable backwards from ``wanted`` (inclusive)."""
        needed: set[str] = set()
        stack = list(dict.fromkeys(wanted))
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            stack.extend(self.graph.node(name).inputs)
        return needed

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
        keep_all: bool = False,
    ) -> dict[str, np.ndarray]:
        """Execute in topological order; returns the requested ``outputs``
        (default: graph sinks).

        Only the ancestors of the requested outputs execute: asking for
        an intermediate runs (and requires feeds for) exactly the
        subgraph that produces it, not the whole network.
        """
        wanted = list(outputs) if outputs is not None else self.graph.sinks
        unknown = [w for w in wanted if w not in self.graph]
        if unknown:
            raise ExecutionError(f"requested outputs never computed: {unknown}")
        needed = self._needed(wanted)
        values: dict[str, np.ndarray] = {}
        remaining_uses = {name: 0 for name in needed}
        for name in needed:
            for src in set(self.graph.node(name).inputs):
                remaining_uses[src] += 1
        keep = set(wanted)

        for node in self.graph:
            if node.name not in needed:
                continue
            if node.op == "input":
                if node.name not in feeds:
                    raise ExecutionError(f"missing feed for input {node.name!r}")
                value = np.asarray(feeds[node.name], dtype=np.float64)
                if tuple(value.shape) != node.output.shape:
                    raise ExecutionError(
                        f"feed {node.name!r} has shape {value.shape}, "
                        f"expected {node.output.shape}"
                    )
            else:
                kernel = KERNELS.get(node.op)
                if kernel is None:
                    raise ExecutionError(f"no kernel for op {node.op!r}")
                args = [values[src] for src in node.inputs]
                value = kernel(args, node.attrs, self.params.get(node.name, {}))
                if tuple(value.shape) != node.output.shape:
                    raise ExecutionError(
                        f"kernel {node.op!r} produced shape {value.shape} for "
                        f"{node.name!r}, spec says {node.output.shape}"
                    )
            values[node.name] = value
            # free dead intermediates unless asked to keep everything
            if not keep_all:
                for src in set(node.inputs):
                    remaining_uses[src] -= 1
                    if remaining_uses[src] == 0 and src not in keep:
                        del values[src]

        return {w: values[w] for w in wanted}
