"""Numerical verification of the compiler's two identity claims.

* :func:`verify_rewrite` — graph rewriting preserves the network's
  function. The rewritten graph's partial convolutions must compute
  with *slices of the original weights* (that is the whole point —
  same math, different order), so :func:`derive_rewritten_params` maps
  original parameters through each partial node's ``source``/
  ``in_slice`` provenance attrs.
* :func:`verify_execution` — a compiled plan preserves it too: the
  arena-backed :class:`~repro.runtime.plan_executor.PlanExecutor`
  (schedule order, planned offsets, shared buffers) must produce
  **bitwise** the outputs of the reference dict executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.exceptions import ExecutionError
from repro.graph.graph import Graph
from repro.rewriting.rewriter import RewriteResult
from repro.runtime.executor import Executor, Params, init_params, random_feeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (compiler -> runtime)
    from repro.compiler.model import CompiledModel

__all__ = [
    "derive_rewritten_params",
    "EquivalenceReport",
    "compare_outputs",
    "verify_rewrite",
    "verify_execution",
]


def derive_rewritten_params(
    original: Graph, rewritten: Graph, params: Params
) -> Params:
    """Parameters for ``rewritten`` derived from ``original``'s.

    Unchanged nodes keep their entries; ``partial_conv2d`` takes the
    input-channel slice ``W[:, lo:hi]`` of its source convolution (bias
    rides with the first partial); ``partial_depthwise_conv2d`` takes the
    kernel slice ``W[lo:hi]`` (bias slice scaled by the multiplier).
    """
    out: Params = {}
    for node in rewritten:
        if node.op == "partial_conv2d":
            src = node.attrs["source"]
            lo, hi = node.attrs["in_slice"]
            source = params[src]
            entry = {"weight": source["weight"][:, lo:hi]}
            if node.attrs.get("owns_bias", False) and "bias" in source:
                entry["bias"] = source["bias"]
            out[node.name] = entry
        elif node.op == "partial_depthwise_conv2d":
            src = node.attrs["source"]
            lo, hi = node.attrs["in_slice"]
            mult = int(node.attrs.get("multiplier", 1))
            source = params[src]
            entry = {"weight": source["weight"][lo:hi]}
            if "bias" in source:
                entry["bias"] = source["bias"][lo * mult : hi * mult]
            out[node.name] = entry
        elif node.name in params:
            out[node.name] = params[node.name]
    return out


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of comparing two executions' outputs."""

    equivalent: bool
    max_abs_error: float
    compared_outputs: tuple[tuple[str, str], ...]

    def __bool__(self) -> bool:
        return self.equivalent


def compare_outputs(
    reference: Mapping[str, np.ndarray],
    candidate: Mapping[str, np.ndarray],
    pairs: Sequence[tuple[str, str]] | None = None,
    rtol: float | None = None,
    atol: float | None = None,
) -> EquivalenceReport:
    """Compare two output dicts pairwise into an :class:`EquivalenceReport`.

    With no tolerances the comparison is **bitwise** (``array_equal``,
    the plan-executor contract); pass ``rtol``/``atol`` for an
    ``allclose`` comparison (the rewrite-verification contract).
    ``pairs`` maps reference names to candidate names; by default every
    reference key is compared against the same candidate key.
    """
    if pairs is None:
        pairs = tuple((name, name) for name in reference)
    max_err = 0.0
    ok = True
    for a, b in pairs:
        x = np.asarray(reference[a])
        y = np.asarray(candidate[b])
        if x.size:
            max_err = max(max_err, float(np.max(np.abs(x - y))))
        if rtol is None and atol is None:
            if not np.array_equal(x, y):
                ok = False
        elif not np.allclose(x, y, rtol=rtol or 0.0, atol=atol or 0.0):
            ok = False
    return EquivalenceReport(
        equivalent=ok, max_abs_error=max_err, compared_outputs=tuple(pairs)
    )


def verify_rewrite(
    original: Graph,
    rewrite: RewriteResult,
    seed: int = 0,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> EquivalenceReport:
    """Run both graphs on shared random weights/inputs and compare every
    graph output (sinks paired through the rewrite's rename map)."""
    rewritten = rewrite.graph
    params = init_params(original, seed=seed)
    derived = derive_rewritten_params(original, rewritten, params)
    feeds = random_feeds(original, seed=seed)

    pairs = []
    for sink in original.sinks:
        counterpart = rewrite.renamed.get(sink, sink)
        if counterpart not in rewritten:
            raise ExecutionError(
                f"output {sink!r} has no counterpart in the rewritten graph"
            )
        pairs.append((sink, counterpart))

    ref = Executor(original, params=params).run(feeds, outputs=[p[0] for p in pairs])
    new = Executor(rewritten, params=derived).run(feeds, outputs=[p[1] for p in pairs])
    return compare_outputs(ref, new, pairs=pairs, rtol=rtol, atol=atol)


def verify_execution(
    model: "CompiledModel", seed: int = 0
) -> EquivalenceReport:
    """Certify a compiled plan against the reference executor.

    Runs the artifact's graph both ways — reference dict executor vs
    :class:`~repro.runtime.plan_executor.PlanExecutor` under the
    artifact's schedule and arena plan — on identical random weights
    and inputs, and demands **bitwise-equal** outputs on every graph
    sink (same kernels, same compute dtype: any difference means the
    plan corrupted memory).
    """
    from repro.runtime.plan_executor import PlanExecutor

    graph = model.graph
    params = init_params(graph, seed=seed)
    feeds = random_feeds(graph, seed=seed)
    sinks = graph.sinks

    ref = Executor(graph, params=params).run(feeds, outputs=sinks)
    planned = PlanExecutor(
        graph, model.schedule, model.plan, params=params
    ).run(feeds, outputs=sinks)
    return compare_outputs(
        ref, planned, pairs=tuple((name, name) for name in sinks)
    )
