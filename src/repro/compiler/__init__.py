"""Compile pipeline: one front door from graph to deployable artifact.

>>> from repro.compiler import CompilationPipeline, CompiledModel
>>> model = CompilationPipeline("serenity").compile(graph)
>>> model.save("model.json")
>>> CompiledModel.load("model.json").executor().run(feeds)
"""

from repro.compiler.model import ARTIFACT_FORMAT, CompiledModel
from repro.compiler.pipeline import CompilationPipeline, compiled_model_from_report

__all__ = [
    "ARTIFACT_FORMAT",
    "CompiledModel",
    "CompilationPipeline",
    "compiled_model_from_report",
]
