"""Precision casting for what-if studies (extension).

The paper's footprints assume one element width throughout; quantised
deployments shrink every activation by the dtype ratio. ``cast_graph``
re-types all tensors, letting the same scheduling machinery answer
"would int8 make this fit?" — peaks scale exactly by the width ratio
while optimal schedules and reduction factors are invariant (checked in
``tests/analysis/test_quantization.py``).
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.tensor import DType, TensorSpec

__all__ = ["cast_graph"]


def cast_graph(graph: Graph, dtype: DType | str) -> Graph:
    """A copy of ``graph`` with every activation re-typed to ``dtype``."""
    target = DType.from_any(dtype)
    out = Graph(graph.name)
    for node in graph:
        attrs = dict(node.attrs)
        if node.op == "input":
            attrs["dtype"] = target.value
        out.add(
            node.replace(
                output=TensorSpec(node.output.shape, target), attrs=attrs
            )
        )
    return out
