"""Table 2: scheduling-time ablation (DP / +divide-and-conquer /
+adaptive-soft-budgeting), with and without graph rewriting, plus the
RandWire demonstration of whole-graph-DP intractability and the ASB
bisection-trajectory study (Fig 8(b) dynamics)."""

from repro.experiments import ablations, table2_ablation


def test_table2_swiftnet_ablation(benchmark, save_result):
    rows = benchmark.pedantic(table2_ablation.run, rounds=1, iterations=1)
    extra = table2_ablation.randwire_intractability()
    save_result("table2_ablation", table2_ablation.render(rows + extra))

    # the paper's partitions reproduce exactly
    partitions = {
        (r.rewriting, r.algorithm): r.partitions
        for r in rows
        if r.algorithm in ("1+2", "1+2+3")
    }
    assert partitions[(False, "1+2")] == (21, 19, 22)
    assert partitions[(False, "1+2+3")] == (21, 19, 22)

    # rewriting grows the graph (paper: 62 -> 92; ours documented in
    # EXPERIMENTS.md) and costs additional scheduling work
    nodes = {r.rewriting: r.nodes for r in rows}
    assert nodes[True] > nodes[False] == 62

    # every decomposed configuration completes
    for r in rows:
        if r.algorithm != "1":
            assert r.time_s is not None

    # the RandWire rows exhibit the paper's N/A -> tractable transition
    whole = next(r for r in extra if r.algorithm == "1")
    dnc = next(r for r in extra if r.algorithm == "1+2+3")
    assert whole.time_s is None, "whole-graph DP should overflow the cap"
    assert dnc.time_s is not None


def test_asb_trajectory_study(benchmark, save_result):
    """Fig 8(b): the soft-budget bisection on a wide segment."""
    from repro.models.suite import get_cell

    graph = get_cell("randwire-c100-b").factory()
    result = benchmark.pedantic(
        ablations.asb_trajectory,
        args=(graph,),
        kwargs={"max_states_per_step": 500},
        rounds=1,
        iterations=1,
    )
    save_result("table2_asb_trajectory", ablations.render_trajectory(result))
    assert result.probes[-1].outcome == "solution"
    # the probe sequence respects the hard budget bracket
    assert all(p.tau <= result.hard_budget for p in result.probes)
