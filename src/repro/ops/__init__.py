"""Operator library: schemas, shape inference and cost accounting.

Importing this package registers the full built-in operator set.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.ops.base import (
    OpSchema,
    get_op,
    has_op,
    infer_shape,
    op_macs,
    op_weights,
    register_op,
    registered_ops,
)

# Importing the submodules populates the registry.
from repro.ops import conv as _conv  # noqa: F401
from repro.ops import dense as _dense  # noqa: F401
from repro.ops import elementwise as _elementwise  # noqa: F401
from repro.ops import fused as _fused  # noqa: F401
from repro.ops import norm as _norm  # noqa: F401
from repro.ops import pool as _pool  # noqa: F401
from repro.ops import shape_ops as _shape_ops  # noqa: F401

__all__ = [
    "OpSchema",
    "register_op",
    "get_op",
    "has_op",
    "registered_ops",
    "infer_shape",
    "op_macs",
    "op_weights",
    "macs_of",
    "weights_of",
]


def _input_specs(graph: Graph, node: Node):
    return [graph.node(src).output for src in node.inputs]


def macs_of(graph: Graph, node: Node) -> int:
    """Multiply-accumulate count of ``node`` within ``graph``."""
    return op_macs(node.op, _input_specs(graph, node), node.output, node.attrs)


def weights_of(graph: Graph, node: Node) -> int:
    """Learnable parameter count of ``node`` within ``graph``."""
    return op_weights(node.op, _input_specs(graph, node), node.output, node.attrs)
