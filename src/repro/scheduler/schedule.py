"""Schedule container and validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import InvalidScheduleError
from repro.graph.graph import Graph

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """A total order over the nodes of one graph.

    The order must be topological — :meth:`validate` enforces it — since
    an activation cannot be computed before its inputs exist.
    """

    order: tuple[str, ...]
    graph_name: str = field(default="graph")

    def __post_init__(self) -> None:
        object.__setattr__(self, "order", tuple(self.order))

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self) -> Iterator[str]:
        return iter(self.order)

    def __getitem__(self, i: int) -> str:
        return self.order[i]

    def position(self, name: str) -> int:
        """Index of ``name`` in the order."""
        try:
            return self.order.index(name)
        except ValueError:
            raise InvalidScheduleError(f"{name!r} not in schedule") from None

    def positions(self) -> dict[str, int]:
        """Name → index mapping."""
        return {name: i for i, name in enumerate(self.order)}

    def validate(self, graph: Graph) -> "Schedule":
        """Raise :class:`InvalidScheduleError` unless this is a complete
        topological order of ``graph``; returns ``self`` for chaining."""
        if len(self.order) != len(set(self.order)):
            raise InvalidScheduleError("schedule repeats a node")
        if set(self.order) != set(graph.node_names):
            missing = set(graph.node_names) - set(self.order)
            extra = set(self.order) - set(graph.node_names)
            raise InvalidScheduleError(
                f"schedule does not cover the graph (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        pos = self.positions()
        for src, dst in graph.edges():
            if pos[src] >= pos[dst]:
                raise InvalidScheduleError(
                    f"edge {src!r} -> {dst!r} violated at positions "
                    f"{pos[src]} >= {pos[dst]}"
                )
        return self

    @classmethod
    def of(cls, graph: Graph, order) -> "Schedule":
        """Build and validate in one call."""
        return cls(tuple(order), graph.name).validate(graph)
