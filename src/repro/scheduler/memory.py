"""Activation-memory accounting: the buffer model and schedule simulator.

This module defines the *exact* footprint semantics shared by every
scheduler in the library (paper Section 3.1, Fig 6):

* executing a node allocates its output buffer (peak is sampled **after**
  the allocation — the transient where inputs and output coexist);
* a buffer is freed once every producer and consumer of every tensor in
  it has executed ("zero-outdegree" deallocation);
* graph outputs (sink nodes) are never freed.

Tensors map onto buffers through a static union-find over the graph's
aliasing annotations (:class:`~repro.graph.node.MemorySemantics`):
in-place nodes join their target input's buffer; view nodes join *all*
of their inputs' buffers. A shared buffer is allocated in full by its
first producer and sized ``max`` over member tensors — for a view-concat
that is the concatenated output size, reproducing the rewriting cost
model of Fig 9 (``max(size(x_i)) + size(y)``).

Because buffer liveness depends only on *which* nodes have executed (a
downset), not on their order, the DP scheduler can account for memory
incrementally per state; :func:`simulate_schedule` is the reference
implementation the DP is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.graph.analysis import GraphIndex
from repro.graph.graph import Graph
from repro.scheduler.schedule import Schedule

__all__ = ["BufferModel", "MemoryTrace", "simulate_schedule", "peak_of"]


@dataclass(frozen=True)
class BufferModel:
    """Static buffer layout of a graph (see module docstring).

    Attributes use node/buffer integer ids from the companion
    :class:`GraphIndex`. ``buffer_of[i]`` maps node *i*'s output tensor to
    its buffer id; per-buffer arrays are indexed by buffer id.
    """

    index: GraphIndex
    buffer_of: tuple[int, ...]
    buf_size: tuple[int, ...]
    #: mask of member (producer) nodes per buffer
    buf_members: tuple[int, ...]
    #: mask of all nodes whose execution gates the buffer's release
    #: (members plus every consumer of every member tensor)
    buf_required: tuple[int, ...]
    #: buffers holding a graph output — never freed
    buf_persistent: tuple[bool, ...]
    #: per node: buffer ids whose release must be re-checked when the
    #: node executes (its own buffer + its inputs' buffers)
    check_buffers: tuple[tuple[int, ...], ...]

    @classmethod
    def build(cls, index: GraphIndex) -> "BufferModel":
        graph = index.graph
        n = index.n

        # Union-find over node (tensor) ids.
        parent = list(range(n))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for i, name in enumerate(index.order):
            node = graph.node(name)
            if node.memory.inplace_of is not None:
                target = index.index[node.inputs[node.memory.inplace_of]]
                union(i, target)
            elif node.memory.view:
                # A view may alias only a subset of its inputs (attr
                # ``view_inputs``): e.g. a concat where some operand has
                # another consumer and must stay separately materialised
                # (it is copied into the view buffer at execution).
                aliased = node.attrs.get("view_inputs")
                indices = range(len(node.inputs)) if aliased is None else aliased
                for j in indices:
                    union(i, index.index[node.inputs[j]])

        roots: dict[int, int] = {}
        buffer_of = []
        for i in range(n):
            r = find(i)
            buffer_of.append(roots.setdefault(r, len(roots)))

        n_buf = len(roots)
        buf_size = [0] * n_buf
        buf_members = [0] * n_buf
        buf_required = [0] * n_buf
        buf_persistent = [False] * n_buf
        for i in range(n):
            b = buffer_of[i]
            buf_size[b] = max(buf_size[b], index.out_bytes[i])
            buf_members[b] |= 1 << i
            buf_required[b] |= (1 << i) | index.succs_mask[i]
            if not index.succs[i]:
                buf_persistent[b] = True

        check: list[tuple[int, ...]] = []
        for i in range(n):
            seen: dict[int, None] = {buffer_of[i]: None}
            for p in index.preds[i]:
                seen.setdefault(buffer_of[p], None)
            check.append(tuple(seen))

        return cls(
            index=index,
            buffer_of=tuple(buffer_of),
            buf_size=tuple(buf_size),
            buf_members=tuple(buf_members),
            buf_required=tuple(buf_required),
            buf_persistent=tuple(buf_persistent),
            check_buffers=tuple(check),
        )

    @classmethod
    def of(cls, graph: Graph) -> "BufferModel":
        return cls.build(GraphIndex.build(graph))

    @property
    def n_buffers(self) -> int:
        return len(self.buf_size)

    # ------------------------------------------------------------------
    # incremental accounting (used by the DP and the simulator)
    # ------------------------------------------------------------------
    def step(self, scheduled: int, mu: int, u: int) -> tuple[int, int, int]:
        """Execute node ``u`` on top of downset ``scheduled`` carrying
        footprint ``mu``.

        Returns ``(transient, mu_after, new_mask)`` where ``transient`` is
        the footprint right after allocating ``u``'s buffer (the peak
        candidate) and ``mu_after`` is the footprint after deallocations.
        """
        new_mask = scheduled | (1 << u)
        b = self.buffer_of[u]
        if not (self.buf_members[b] & scheduled):
            mu += self.buf_size[b]
        transient = mu
        for b2 in self.check_buffers[u]:
            if self.buf_persistent[b2]:
                continue
            # u in required(b2) guarantees the buffer was not yet freed
            # (and, since members ⊆ required, that it is allocated); it
            # frees now iff every other required node already executed.
            if not (self.buf_required[b2] & ~new_mask):
                mu -= self.buf_size[b2]
        return transient, mu, new_mask

    def footprint_of(self, scheduled: int) -> int:
        """Footprint of an arbitrary downset, from first principles
        (reference for tests; the incremental path is :meth:`step`)."""
        mu = 0
        for b in range(self.n_buffers):
            allocated = bool(self.buf_members[b] & scheduled)
            freed = (
                not self.buf_persistent[b]
                and not (self.buf_required[b] & ~scheduled)
            )
            if allocated and not freed:
                mu += self.buf_size[b]
        return mu


@dataclass(frozen=True)
class MemoryTrace:
    """Footprint evolution of one schedule.

    ``transients[i]`` is the footprint right after step *i*'s allocation
    (the value whose max is the peak); ``footprints[i]`` is the settled
    footprint after step *i*'s deallocations (the curve in Fig 12).
    """

    schedule: Schedule
    transients: np.ndarray
    footprints: np.ndarray

    @property
    def peak_bytes(self) -> int:
        return int(self.transients.max(initial=0))

    @property
    def peak_step(self) -> int:
        return int(self.transients.argmax()) if len(self.transients) else 0

    @property
    def peak_kib(self) -> float:
        return self.peak_bytes / 1024.0

    @cached_property
    def final_bytes(self) -> int:
        """Footprint after the last step (graph outputs)."""
        return int(self.footprints[-1]) if len(self.footprints) else 0


def simulate_schedule(
    graph: Graph,
    schedule: Schedule,
    model: BufferModel | None = None,
    validate: bool = True,
) -> MemoryTrace:
    """Replay ``schedule`` through the buffer model."""
    if validate:
        schedule.validate(graph)
    model = model or BufferModel.of(graph)
    idx = model.index
    n = len(schedule)
    transients = np.zeros(n, dtype=np.int64)
    footprints = np.zeros(n, dtype=np.int64)
    scheduled, mu = 0, 0
    for i, name in enumerate(schedule):
        transient, mu, scheduled = model.step(scheduled, mu, idx.index[name])
        transients[i] = transient
        footprints[i] = mu
    return MemoryTrace(schedule=schedule, transients=transients, footprints=footprints)


def peak_of(graph: Graph, order, model: BufferModel | None = None) -> int:
    """Peak bytes of ``order`` (convenience wrapper)."""
    sched = order if isinstance(order, Schedule) else Schedule(tuple(order), graph.name)
    return simulate_schedule(graph, sched, model=model).peak_bytes
