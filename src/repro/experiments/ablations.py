"""Design-choice ablations beyond the paper's tables (DESIGN.md list).

* allocator strategy: first-fit arena (TFLite simple arena) vs
  ahead-of-time greedy-by-size planning, on every suite cell;
* replacement policy: Belady vs LRU vs FIFO off-chip traffic;
* adaptive-soft-budgeting trajectory: the (tau, outcome) probe sequence
  on a hard segment, showing the Fig 8(b) bisection in action.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocator.arena import plan_allocation
from repro.analysis.reporting import format_table
from repro.experiments.common import suite_runs
from repro.memsim.hierarchy import offchip_traffic
from repro.scheduler.budget import AdaptiveSoftBudgetScheduler

__all__ = [
    "allocator_ablation",
    "render_allocator",
    "policy_ablation",
    "render_policy",
    "asb_trajectory",
    "render_trajectory",
]


# ----------------------------------------------------------------------
# allocator strategies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AllocRow:
    display: str
    ideal_kb: float  # sum-of-live peak: lower bound for any allocator
    first_fit_kb: float
    greedy_kb: float


def allocator_ablation(keys: list[str] | None = None) -> list[AllocRow]:
    rows = []
    for r in suite_runs(keys):
        rep = r.gr
        ideal = rep.peak_bytes
        ff = plan_allocation(rep.scheduled_graph, rep.schedule, "first_fit")
        gb = plan_allocation(rep.scheduled_graph, rep.schedule, "greedy_by_size")
        rows.append(
            AllocRow(
                display=r.spec.display,
                ideal_kb=ideal / 1024.0,
                first_fit_kb=ff.arena_bytes / 1024.0,
                greedy_kb=gb.arena_bytes / 1024.0,
            )
        )
    return rows


def render_allocator(rows: list[AllocRow]) -> str:
    body = [
        (
            r.display,
            f"{r.ideal_kb:.1f}",
            f"{r.first_fit_kb:.1f}",
            f"{r.greedy_kb:.1f}",
            f"{100 * (r.first_fit_kb / r.ideal_kb - 1):.1f}%",
            f"{100 * (r.greedy_kb / r.ideal_kb - 1):.1f}%",
        )
        for r in rows
    ]
    return format_table(
        ("cell", "ideal KB", "first-fit KB", "greedy KB", "FF overhead", "GB overhead"),
        body,
        title="Ablation - arena allocator strategy (SERENITY schedules)",
    )


# ----------------------------------------------------------------------
# replacement policies
# ----------------------------------------------------------------------
def policy_ablation(
    capacity_kb: int = 256, keys: list[str] | None = None
) -> list[tuple[str, dict[str, int]]]:
    """Per cell: policy -> total off-chip bytes for the SERENITY schedule."""
    out = []
    for r in suite_runs(keys):
        rep = r.gr
        traffic = {
            policy: offchip_traffic(
                rep.scheduled_graph, rep.schedule, capacity_kb * 1024, policy=policy
            ).total_bytes
            for policy in ("belady", "lru", "fifo")
        }
        out.append((r.spec.display, traffic))
    return out


def render_policy(rows, capacity_kb: int = 256) -> str:
    body = [
        (
            display,
            f"{t['belady'] / 1024:.0f}",
            f"{t['lru'] / 1024:.0f}",
            f"{t['fifo'] / 1024:.0f}",
        )
        for display, t in rows
    ]
    return format_table(
        ("cell", "belady KB", "lru KB", "fifo KB"),
        body,
        title=f"Ablation - replacement policy at {capacity_kb}KB on-chip",
    )


# ----------------------------------------------------------------------
# adaptive-soft-budgeting trajectory
# ----------------------------------------------------------------------
def asb_trajectory(graph, max_states_per_step: int = 200):
    """Run ASB with a deliberately tight step allowance so the bisection
    has to work; returns the probe list (tau, outcome, time)."""
    asb = AdaptiveSoftBudgetScheduler(max_states_per_step=max_states_per_step)
    return asb.schedule(graph)


def render_trajectory(result) -> str:
    body = [
        (
            i,
            f"{p.tau / 1024:.1f}KB",
            p.outcome,
            f"{p.wall_time_s * 1000:.1f}ms",
            f"{p.states_expanded:,}",
        )
        for i, p in enumerate(result.probes)
    ]
    table = format_table(
        ("probe", "tau", "outcome", "time", "states"),
        body,
        title="Ablation - adaptive soft budgeting bisection (Fig 8(b) dynamics)",
    )
    return (
        table
        + f"\nhard budget {result.hard_budget / 1024:.1f}KB -> optimal "
        + f"{result.peak_bytes / 1024:.1f}KB in {len(result.probes)} probes"
    )
