"""Fully connected (dense) operator."""

from __future__ import annotations

from typing import Any

from repro.exceptions import ShapeError
from repro.graph.tensor import TensorSpec
from repro.ops.base import OpSchema, register_op


def _dense_shape(inputs: list[TensorSpec], attrs: dict[str, Any]) -> TensorSpec:
    units = int(attrs["units"])
    if units <= 0:
        raise ShapeError(f"dense units must be positive, got {units}")
    if inputs[0].rank != 1:
        raise ShapeError(
            f"dense expects a flattened (features,) input, got {inputs[0].shape}; "
            "insert a flatten node"
        )
    return TensorSpec((units,), inputs[0].dtype)


def _dense_macs(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    return inputs[0].elements * out.elements


def _dense_weights(inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    bias = out.elements if attrs.get("use_bias", True) else 0
    return inputs[0].elements * out.elements + bias


register_op(
    OpSchema(
        name="dense",
        infer_shape=_dense_shape,
        macs=_dense_macs,
        weights=_dense_weights,
    )
)
