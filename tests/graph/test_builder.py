"""GraphBuilder: shape inference, naming, composite helpers."""

import pytest

from repro.exceptions import GraphError, ShapeError
from repro.graph.builder import GraphBuilder
from repro.graph.tensor import DType


@pytest.fixture
def b() -> GraphBuilder:
    return GraphBuilder("t")


class TestCore:
    def test_auto_names_increment(self, b):
        x = b.input("x", (2, 4, 4))
        c1 = b.conv2d(x, 2)
        c2 = b.conv2d(x, 2)
        assert (c1, c2) == ("conv2d_0", "conv2d_1")

    def test_explicit_name(self, b):
        x = b.input("x", (2, 4, 4))
        assert b.relu(x, name="myrelu") == "myrelu"

    def test_spec_lookup(self, b):
        x = b.input("x", (2, 4, 4))
        assert b.spec(x).shape == (2, 4, 4)

    def test_build_validates(self, b):
        with pytest.raises(GraphError):
            b.build()  # empty

    def test_graph_property_live(self, b):
        b.input("x", (2, 4, 4))
        assert len(b.graph) == 1


class TestOps:
    def test_input_dtype(self, b):
        x = b.input("x", (2, 4, 4), dtype="int8")
        assert b.spec(x).dtype is DType.INT8

    def test_conv2d_same_stride2(self, b):
        x = b.input("x", (3, 9, 9))
        c = b.conv2d(x, 8, kernel=3, stride=2)
        assert b.spec(c).shape == (8, 5, 5)

    def test_conv2d_valid(self, b):
        x = b.input("x", (3, 9, 9))
        c = b.conv2d(x, 8, kernel=3, padding="valid")
        assert b.spec(c).shape == (8, 7, 7)

    def test_pointwise(self, b):
        x = b.input("x", (3, 9, 9))
        c = b.pointwise_conv2d(x, 16)
        assert b.spec(c).shape == (16, 9, 9)

    def test_depthwise_multiplier(self, b):
        x = b.input("x", (3, 8, 8))
        d = b.depthwise_conv2d(x, kernel=3, multiplier=2)
        assert b.spec(d).shape == (6, 8, 8)

    def test_concat_channels(self, b):
        x = b.input("x", (3, 8, 8))
        y = b.conv2d(x, 5, kernel=1)
        cat = b.concat([x, y])
        assert b.spec(cat).shape == (8, 8, 8)

    def test_concat_empty_rejected(self, b):
        with pytest.raises(GraphError):
            b.concat([])

    def test_concat_mismatched_hw_rejected(self, b):
        x = b.input("x", (3, 8, 8))
        y = b.input("y", (3, 4, 4))
        with pytest.raises(ShapeError):
            b.concat([x, y])

    def test_add_shape(self, b):
        x = b.input("x", (3, 8, 8))
        y = b.input("y", (3, 8, 8))
        assert b.spec(b.add(x, y)).shape == (3, 8, 8)

    def test_add_mismatch_rejected(self, b):
        x = b.input("x", (3, 8, 8))
        y = b.input("y", (4, 8, 8))
        with pytest.raises(ShapeError):
            b.add(x, y)

    def test_max_pool_defaults(self, b):
        x = b.input("x", (3, 8, 8))
        p = b.max_pool2d(x, kernel=2)
        assert b.spec(p).shape == (3, 4, 4)

    def test_avg_pool_stride(self, b):
        x = b.input("x", (3, 9, 9))
        p = b.avg_pool2d(x, kernel=3, stride=2, padding="same")
        assert b.spec(p).shape == (3, 5, 5)

    def test_global_avg_pool(self, b):
        x = b.input("x", (7, 9, 9))
        assert b.spec(b.global_avg_pool(x)).shape == (7, 1, 1)

    def test_flatten_dense(self, b):
        x = b.input("x", (2, 3, 3))
        f = b.flatten(x)
        d = b.dense(f, 10)
        assert b.spec(f).shape == (18,)
        assert b.spec(d).shape == (10,)

    def test_dense_requires_flat(self, b):
        x = b.input("x", (2, 3, 3))
        with pytest.raises(ShapeError, match="flatten"):
            b.dense(x, 10)

    def test_slice_channels(self, b):
        x = b.input("x", (8, 4, 4))
        s = b.slice_channels(x, 2, 5)
        assert b.spec(s).shape == (3, 4, 4)

    def test_slice_channels_bad_range(self, b):
        x = b.input("x", (8, 4, 4))
        with pytest.raises(ShapeError):
            b.slice_channels(x, 5, 2)

    def test_batch_norm_identity_shape(self, b):
        x = b.input("x", (8, 4, 4))
        assert b.spec(b.batch_norm(x)).shape == (8, 4, 4)

    def test_separable_conv_composite(self, b):
        x = b.input("x", (4, 8, 8))
        out = b.separable_conv(x, 16, kernel=3, name="sep")
        assert b.spec(out).shape == (16, 8, 8)
        # relu -> dw -> pw -> bn chain = four nodes plus the input
        assert len(b.graph) == 5
