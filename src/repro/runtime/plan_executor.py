"""Arena-backed plan executor: run a graph the way a device would.

The reference :class:`~repro.runtime.executor.Executor` evaluates a
graph in topological order with a dict of arrays — correct, but blind
to everything the compiler worked out. :class:`PlanExecutor` instead
executes under a compiled plan:

* kernels run in **schedule order** (the memory-aware order found by
  the scheduler, not the graph's insertion order);
* every activation lives at its planned byte offset inside **one
  preallocated arena** (the :class:`~repro.allocator.arena.AllocationPlan`
  produced by the TFLite-style offset allocators);
* buffer aliasing is honoured physically: an in-place accumulation
  writes over its target's bytes, and a view concat's operands are
  produced directly into their slice of the shared output buffer
  (:class:`~repro.graph.node.MemorySemantics`).

The executor tracks the arena's measured high-water mark while it runs
and raises if it ever exceeds ``AllocationPlan.arena_bytes`` — the
plan's promise is checked on every execution, not assumed. Outputs are
bitwise-identical to the reference executor (same kernels, same
parameters, same float64 compute dtype); the parity suite in
``tests/runtime/test_plan_executor.py`` asserts exactly that across the
whole benchmark suite.

Offsets inside a shared buffer
------------------------------
The :class:`~repro.scheduler.memory.BufferModel` says *which* tensors
share a buffer; executing them also needs *where inside it* each tensor
sits. That placement is solved once at construction: aliasing edges
(``intra[u] == intra[target]`` for in-place nodes, ``intra[x_j] ==
intra[view] + sum(bytes(x_0..x_{j-1}))`` for view operands) are
propagated from each buffer's deepest consumer, then bounds-checked
against the buffer extent. Inconsistent aliasing is rejected instead of
silently corrupting memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.allocator.arena import AllocationPlan
from repro.exceptions import ExecutionError
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.runtime.executor import Params, init_params
from repro.runtime.kernels import KERNELS
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = ["PlanExecutor", "PlanExecutionStats", "intra_buffer_offsets"]

#: the reference executor computes in float64; the arena does the same
#: so the two produce bitwise-identical outputs
_EXEC_DTYPE = np.dtype(np.float64)


def _view_operand_offsets(graph: Graph, node: Node) -> list[int]:
    """Byte offset of each input occurrence inside a view node's output.

    View concats stack their operands along axis 0 of a C-contiguous
    tensor, so operand *j* starts at the summed bytes of operands
    ``0..j-1`` (aliased or not — copied operands still occupy their
    slice of the layout).
    """
    offsets: list[int] = []
    cursor = 0
    for src in node.inputs:
        offsets.append(cursor)
        cursor += graph.node(src).output.bytes
    return offsets


def intra_buffer_offsets(graph: Graph, model: BufferModel) -> dict[str, int]:
    """Byte offset of every node's tensor *within* its shared buffer.

    Plain (non-aliasing, non-aliased) tensors sit at offset 0 of their
    own buffer. Aliasing constraints are propagated from each buffer's
    deepest consumer backwards; a node constrained to two different
    offsets (a tensor cannot be a slice of two places at once) raises
    :class:`ExecutionError`, as does any placement escaping the buffer.
    """
    idx = model.index
    n = idx.n
    # adjacency: intra[a] == intra[b] + delta  <=>  (b, a, -delta)
    edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]

    def constrain(a: int, b: int, delta: int) -> None:
        edges[a].append((b, delta))
        edges[b].append((a, -delta))

    for i, name in enumerate(idx.order):
        node = graph.node(name)
        if node.memory.inplace_of is not None:
            constrain(i, idx.index[node.inputs[node.memory.inplace_of]], 0)
        elif node.memory.view:
            aliased = node.attrs.get("view_inputs")
            indices = range(len(node.inputs)) if aliased is None else aliased
            rel = _view_operand_offsets(graph, node)
            for j in indices:
                # intra[input_j] == intra[view] + rel[j]
                constrain(idx.index[node.inputs[j]], i, rel[j])

    intra: list[int | None] = [None] * n
    for root in range(n - 1, -1, -1):  # deepest consumers first
        if intra[root] is not None:
            continue
        intra[root] = 0
        stack = [root]
        while stack:
            a = stack.pop()
            base = intra[a]
            assert base is not None
            for b, delta in edges[a]:
                want = base - delta
                if intra[b] is None:
                    intra[b] = want
                    stack.append(b)
                elif intra[b] != want:
                    raise ExecutionError(
                        f"inconsistent buffer aliasing: {idx.order[b]!r} is "
                        f"placed at byte {intra[b]} and {want} of the same "
                        "buffer"
                    )

    # normalise each buffer to start at 0 and check every member fits
    from repro.graph.analysis import bits

    for b in range(model.n_buffers):
        members = list(bits(model.buf_members[b]))
        lo = min(intra[i] for i in members)  # type: ignore[type-var]
        for i in members:
            intra[i] -= lo  # type: ignore[operator]
            if intra[i] + idx.out_bytes[i] > model.buf_size[b]:  # type: ignore[operator]
                raise ExecutionError(
                    f"tensor {idx.order[i]!r} at intra-buffer byte "
                    f"{intra[i]} escapes its {model.buf_size[b]}-byte buffer"
                )
    return {idx.order[i]: int(intra[i]) for i in range(n)}  # type: ignore[arg-type]


@dataclass(frozen=True)
class PlanExecutionStats:
    """Arena accounting measured during one :meth:`PlanExecutor.run`."""

    steps: int
    #: the plan's promised capacity
    arena_bytes: int
    #: highest byte extent any live buffer actually reached
    measured_peak_bytes: int

    @property
    def utilization(self) -> float:
        """Measured peak as a fraction of the planned arena."""
        return (
            self.measured_peak_bytes / self.arena_bytes if self.arena_bytes else 1.0
        )


class PlanExecutor:
    """Execute a graph under a schedule and arena plan.

    >>> px = PlanExecutor(model.graph, model.schedule, model.plan)
    >>> outputs = px.run(random_feeds(model.graph))
    >>> px.last_stats.measured_peak_bytes <= model.plan.arena_bytes
    True

    Parameters mirror the reference executor: ``params`` defaults to the
    deterministic per-node random initialisation, so the same
    ``(graph, seed)`` pair yields bitwise-identical outputs under both
    executors.
    """

    def __init__(
        self,
        graph: Graph,
        schedule: Schedule,
        plan: AllocationPlan,
        params: Params | None = None,
        seed: int = 0,
        model: BufferModel | None = None,
    ) -> None:
        schedule.validate(graph)
        self.graph = graph
        self.schedule = schedule
        self.plan = plan
        self.params = params if params is not None else init_params(graph, seed)
        self.model = model or BufferModel.of(graph)
        self.last_stats: PlanExecutionStats | None = None

        idx = self.model.index
        if set(plan.offsets) != set(range(self.model.n_buffers)):
            raise ExecutionError(
                "allocation plan does not cover the graph's buffers "
                f"({len(plan.offsets)} offsets for {self.model.n_buffers} buffers)"
            )
        for lt in plan.lifetimes:
            if self.model.buf_size[lt.buffer_id] != lt.size:
                raise ExecutionError(
                    f"allocation plan disagrees with the graph: buffer "
                    f"{lt.buffer_id} is {lt.size} bytes in the plan, "
                    f"{self.model.buf_size[lt.buffer_id]} in the graph"
                )

        itemsizes = {graph.node(name).output.dtype.itemsize for name in idx.order}
        if len(itemsizes) != 1:
            raise ExecutionError(
                "PlanExecutor requires a uniform tensor itemsize "
                f"(found {sorted(itemsizes)}); use the reference Executor "
                "for mixed-dtype graphs"
            )
        self._itemsize = itemsizes.pop()

        intra = intra_buffer_offsets(graph, self.model)
        self._check_write_hazards(intra)
        self._elem_offset: dict[str, int] = {}
        for i, name in enumerate(idx.order):
            byte_off = plan.offsets[self.model.buffer_of[i]] + intra[name]
            if byte_off % self._itemsize:
                raise ExecutionError(
                    f"planned offset {byte_off} of {name!r} is not aligned "
                    f"to the {self._itemsize}-byte element size"
                )
            self._elem_offset[name] = byte_off // self._itemsize
        self._arena_elems = -(-plan.arena_bytes // self._itemsize)

    def _check_write_hazards(self, intra: dict[str, int]) -> None:
        """Reject schedules under which buffer sharing corrupts a read.

        Two members of one buffer with overlapping byte ranges are fine
        only while nobody reads the earlier tensor after the later one
        writes — e.g. an in-place accumulator whose target has a second
        consumer scheduled after the overwrite would silently read the
        *new* bytes. A view node rewriting an aliased operand's slice
        is exempt: it copies the identical bytes back.
        """
        from repro.graph.analysis import bits

        graph, model = self.graph, self.model
        idx = model.index
        pos = self.schedule.positions()

        def aliased_inputs(node: Node) -> set[str]:
            indices = node.attrs.get("view_inputs")
            if indices is None:
                indices = range(len(node.inputs))
            return {node.inputs[j] for j in indices}

        for b in range(model.n_buffers):
            members = [
                (idx.order[i], intra[idx.order[i]], idx.out_bytes[i])
                for i in bits(model.buf_members[b])
            ]
            for vi, (a, a_off, a_sz) in enumerate(members):
                for b2, b_off, b_sz in members[vi + 1 :]:
                    if not (a_off < b_off + b_sz and b_off < a_off + a_sz):
                        continue  # disjoint slices (e.g. view operands)
                    # late (scheduled later) writes over early's bytes
                    early, late = (a, b2) if pos[a] <= pos[b2] else (b2, a)
                    writer = graph.node(late)
                    if writer.memory.view and early in aliased_inputs(writer):
                        continue  # byte-preserving copy-back
                    clobbered = [
                        c
                        for c in graph.succs(early)
                        if c != late and pos[c] > pos[late]
                    ]
                    if clobbered:
                        raise ExecutionError(
                            f"schedule is unsafe for this buffer layout: "
                            f"{late!r} overwrites {early!r}'s bytes at step "
                            f"{pos[late]}, but {clobbered[0]!r} still reads "
                            f"{early!r} at step {pos[clobbered[0]]}"
                        )

    # ------------------------------------------------------------------
    def _site(self, arena: np.ndarray, name: str) -> np.ndarray:
        """The arena view holding ``name``'s activation."""
        node = self.graph.node(name)
        start = self._elem_offset[name]
        return arena[start : start + node.output.elements].reshape(node.output.shape)

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute the full schedule inside one arena.

        Returns copies of the requested ``outputs`` (default: graph
        sinks) — an intermediate output is snapshotted the moment it is
        produced, before any later in-place consumer can overwrite its
        bytes. Sets :attr:`last_stats` with the measured arena peak and
        raises :class:`ExecutionError` if that peak ever exceeds the
        plan's ``arena_bytes``.
        """
        wanted = list(outputs) if outputs is not None else self.graph.sinks
        unknown = [w for w in wanted if w not in self.graph]
        if unknown:
            raise ExecutionError(f"requested outputs never computed: {unknown}")

        model = self.model
        idx = model.index
        arena = np.zeros(self._arena_elems, dtype=_EXEC_DTYPE)
        snapshots: dict[str, np.ndarray] = {}
        want = set(wanted)

        live: set[int] = set()
        executed = 0
        measured_peak = 0
        for name in self.schedule:
            node = self.graph.node(name)
            u = idx.index[name]
            b = model.buffer_of[u]
            live.add(b)
            extent = max(
                self.plan.offsets[bb] + model.buf_size[bb] for bb in live
            )
            measured_peak = max(measured_peak, extent)
            if measured_peak > self.plan.arena_bytes:
                raise ExecutionError(
                    f"arena overflow at {name!r}: measured high-water mark "
                    f"{measured_peak} exceeds the planned "
                    f"{self.plan.arena_bytes} bytes"
                )

            site = self._site(arena, name)
            if node.op == "input":
                if name not in feeds:
                    raise ExecutionError(f"missing feed for input {name!r}")
                value = np.asarray(feeds[name], dtype=_EXEC_DTYPE)
                if tuple(value.shape) != node.output.shape:
                    raise ExecutionError(
                        f"feed {name!r} has shape {value.shape}, "
                        f"expected {node.output.shape}"
                    )
            else:
                kernel = KERNELS.get(node.op)
                if kernel is None:
                    raise ExecutionError(f"no kernel for op {node.op!r}")
                args = [self._site(arena, src) for src in node.inputs]
                value = kernel(args, node.attrs, self.params.get(name, {}))
                if tuple(value.shape) != node.output.shape:
                    raise ExecutionError(
                        f"kernel {node.op!r} produced shape {value.shape} for "
                        f"{name!r}, spec says {node.output.shape}"
                    )
            site[...] = value
            if name in want:
                snapshots[name] = site.copy()

            executed |= 1 << u
            for b2 in model.check_buffers[u]:
                if model.buf_persistent[b2]:
                    continue
                if not (model.buf_required[b2] & ~executed):
                    live.discard(b2)

        self.last_stats = PlanExecutionStats(
            steps=len(self.schedule),
            arena_bytes=self.plan.arena_bytes,
            measured_peak_bytes=measured_peak,
        )
        return {w: snapshots[w] for w in wanted}
