"""Scheduler-family ablation (extension): where does each class of
scheduler land between the TFLite baseline and the DP optimum?

Compares memory-oblivious orders (Kahn, DFS), the greedy memory-aware
list scheduler, simulated annealing (a generic metaheuristic), and the
exact DP, on the fast cells of the suite. The gaps motivate the paper's
design: greedy and annealing close part of the distance but only the DP
is reliably optimal — at interactive compile times.
"""

from repro.analysis.reporting import format_table
from repro.models.suite import get_cell
from repro.scheduler.annealing import anneal_schedule
from repro.scheduler.dp import dp_schedule
from repro.scheduler.greedy import greedy_schedule
from repro.scheduler.memory import peak_of
from repro.scheduler.topological import dfs_schedule, kahn_schedule

CELLS = ("swiftnet-a", "swiftnet-b", "swiftnet-c", "randwire-c100-c")


def run():
    rows = []
    for key in CELLS:
        g = get_cell(key).factory()
        peaks = {
            "kahn": peak_of(g, kahn_schedule(g)),
            "dfs": peak_of(g, dfs_schedule(g)),
            "greedy": peak_of(g, greedy_schedule(g)),
            "anneal": anneal_schedule(g, iterations=1500, seed=0).peak_bytes,
            "dp": dp_schedule(g, max_states_per_step=50_000).peak_bytes,
        }
        rows.append((key, peaks))
    return rows


def render(rows) -> str:
    body = [
        (
            key,
            *(f"{peaks[k] / 1024:.1f}" for k in ("kahn", "dfs", "greedy", "anneal", "dp")),
            f"{peaks['kahn'] / peaks['dp']:.2f}x",
        )
        for key, peaks in rows
    ]
    return format_table(
        ("cell", "kahn KB", "dfs KB", "greedy KB", "anneal KB", "DP KB", "kahn/DP"),
        body,
        title="Ablation - scheduler families (peak KB, no allocator)",
    )


def test_scheduler_family_ablation(benchmark, save_result):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("scheduler_ablation", render(rows))

    for key, peaks in rows:
        # the DP lower-bounds every other scheduler
        assert all(peaks["dp"] <= v for v in peaks.values()), key
        # memory-aware heuristics beat at least one oblivious baseline
        assert peaks["greedy"] <= max(peaks["kahn"], peaks["dfs"]), key
        # annealing is at least as good as a random restart's baseline
        assert peaks["anneal"] <= max(peaks["kahn"], peaks["dfs"]), key
