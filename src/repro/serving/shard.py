"""Process-sharded serving: multi-process front end over shared-memory rings.

The thread-based :class:`~repro.serving.scheduler.RequestScheduler`
scales until the GIL says stop — the NumPy kernels hold it for most of
a micro-cell run, so ``workers=4`` buys little over ``workers=1``.
:class:`ShardedScheduler` is the process-level answer: it spawns N
worker **processes**, each owning its own
:class:`~repro.serving.pool.ArenaPool` and
:class:`~repro.serving.scheduler.RequestScheduler` (every serving knob
— ``batch_size``, ``spill``, ``prefetch``, ``link`` — passes through),
behind the same ``submit() -> Future`` API, so ``run_load``, ``serve``
and ``bench-serve`` drive it unchanged.

Two properties make it more than ``multiprocessing.Pool``:

* **Sticky model → shard routing.** Models are assigned to shards by a
  rendezvous (highest-random-weight) hash of their canonical *graph
  signature*: stable across runs, minimally disturbed when the shard
  count changes, and deterministic — so every request for a model
  lands on the one shard whose arenas are already warm, and
  ``preload()`` never builds the same model twice.
* **Zero-copy tensor rings.** Feed and output tensors never pickle.
  Each shard owns two ``multiprocessing.shared_memory`` ring buffers
  (request and response) carved into fixed-size slots; the front end
  writes feed tensors into a request slot and sends only fixed-size
  ``(name, dtype, shape, offset)`` descriptors over the control pipe,
  the worker maps them back as NumPy views straight into the executor,
  and output tensors come back the same way. The pickled control
  message is the same size for a 1 KB and a 1 GB tensor.

Lifecycle is explicit and safe: ``SIGTERM``/``SIGINT`` in a worker
drains its in-flight requests before exit, ``close()`` is idempotent,
the parent always unlinks every shared-memory segment (with a
``weakref.finalize`` backstop), and a shard that dies — during preload
or mid-load — fails fast: its in-flight futures error with
:class:`~repro.exceptions.ServingError` instead of hanging, and other
shards keep serving.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import shutil
import signal
import tempfile
import threading
import time
import weakref
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.exceptions import ServingError
from repro.memsim import OffchipLink
from repro.serving.pool import ArenaPool, PoolStats
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import (
    InferenceResult,
    RequestScheduler,
    RequestStats,
    ServingStats,
)

__all__ = [
    "ShardStats",
    "ShardedScheduler",
    "balanced_routing",
    "rendezvous_shard",
]

#: alignment of every tensor payload inside a ring slot (cache line)
_ALIGN = 64

_START_METHOD = "fork" if "fork" in get_all_start_methods() else "spawn"
_MP = get_context(_START_METHOD)


# ----------------------------------------------------------------------
# sticky routing: rendezvous hashing on the graph signature
# ----------------------------------------------------------------------
def _rendezvous_score(key: str, shard: int) -> int:
    digest = hashlib.blake2b(
        f"{key}|{shard}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_shard(key: str, shards: int) -> int:
    """Highest-random-weight shard for ``key`` (deterministic).

    Unlike ``hash(key) % shards`` this is stable across interpreter
    runs (no hash randomisation) and rebalances *minimally*: going from
    ``n`` to ``n + 1`` shards moves only the keys whose new shard wins
    the rendezvous — roughly ``1 / (n + 1)`` of them — and every moved
    key moves *to the new shard*, never between surviving ones.
    """
    if shards < 1:
        raise ServingError(f"shards must be >= 1, got {shards}")
    return max(range(shards), key=lambda i: _rendezvous_score(key, i))


def balanced_routing(keys: Mapping[str, str], shards: int) -> dict[str, int]:
    """Sticky, balanced model→shard assignment for a whole registry.

    Pure rendezvous on a *small* model set can pile everything onto one
    shard by hash luck — which would quietly erase the sharding win.
    This keeps the rendezvous preference (each model goes to its
    highest-scoring shard) but restricts the choice to the currently
    least-loaded shards, so ``n`` models spread over ``min(n, shards)``
    shards. Models are placed in signature order, so the assignment is
    deterministic for a given (model set, shard count) — every restart
    routes the same model to the same warm shard.
    """
    if shards < 1:
        raise ServingError(f"shards must be >= 1, got {shards}")
    load = [0] * shards
    routing: dict[str, int] = {}
    for name in sorted(keys, key=lambda n: (keys[n], n)):
        floor = min(load)
        candidates = [i for i in range(shards) if load[i] == floor]
        shard = max(
            candidates, key=lambda i: _rendezvous_score(keys[name], i)
        )
        routing[name] = shard
        load[shard] += 1
    return routing


# ----------------------------------------------------------------------
# shared-memory tensor rings
# ----------------------------------------------------------------------
def _attach_shm(name: str) -> SharedMemory:
    """Attach to an existing segment a worker does not own.

    Pre-3.13 ``SharedMemory`` registers the segment with the resource
    tracker on *attach*, not just create (bpo-39959). Under ``spawn``
    the child has its own tracker, which would warn "leaked
    shared_memory" at exit — worse, *unlink* the parent's live segment
    while cleaning up — so the child must unregister. Under ``fork``
    the tracker process is shared with the parent: the attach-side
    re-register is an idempotent set-add, and unregistering here would
    strip the parent's entry and break its own ``unlink``. Python 3.13
    grew ``track=False`` for exactly this dance.
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        shm = SharedMemory(name=name)
        if _START_METHOD == "spawn":
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


class _TensorRing:
    """A shared-memory segment carved into fixed-size tensor slots.

    ``write`` packs a dict of arrays into one slot and returns the
    fixed-size descriptors ``(name, dtype, shape, offset)`` that cross
    the control pipe; ``read`` maps descriptors back to zero-copy NumPy
    views over the segment. Slot bookkeeping (who may write which slot)
    lives with the writing side — :class:`_SlotPool` — not here.
    """

    def __init__(
        self, slot_bytes: int, slots: int, *, name: str | None = None
    ) -> None:
        self.slot_bytes = slot_bytes
        self.slots = slots
        if name is None:
            self.shm = SharedMemory(create=True, size=slot_bytes * slots)
            self.owner = True
        else:
            self.shm = _attach_shm(name)
            self.owner = False

    @property
    def name(self) -> str:
        return self.shm.name

    def write(
        self, slot: int, arrays: Mapping[str, np.ndarray]
    ) -> tuple[tuple[str, str, tuple[int, ...], int], ...]:
        """Pack ``arrays`` into ``slot``; returns pipe descriptors."""
        base = slot * self.slot_bytes
        cursor = 0
        descs = []
        for name, array in arrays.items():
            a = np.ascontiguousarray(array)
            cursor = _align(cursor)
            if cursor + a.nbytes > self.slot_bytes:
                raise ServingError(
                    f"tensor payload exceeds the ring slot: {name!r} at "
                    f"offset {cursor} + {a.nbytes} bytes > slot "
                    f"{self.slot_bytes} bytes"
                )
            if a.size:
                view = np.frombuffer(
                    self.shm.buf,
                    dtype=a.dtype,
                    count=a.size,
                    offset=base + cursor,
                )
                view[...] = a.ravel()
            descs.append((name, a.dtype.str, tuple(a.shape), base + cursor))
            cursor += a.nbytes
        return tuple(descs)

    def read(
        self, descs: Iterable[tuple[str, str, tuple[int, ...], int]]
    ) -> dict[str, np.ndarray]:
        """Descriptors back to zero-copy views into the segment."""
        out: dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in descs:
            dt = np.dtype(dtype)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            out[name] = np.frombuffer(
                self.shm.buf, dtype=dt, count=count, offset=offset
            ).reshape(shape)
        return out

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:
            # a NumPy view over the segment is still alive somewhere;
            # the mapping is released when the last view dies (or the
            # process exits) — unlink below does not need it closed
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass


class _SlotPool:
    """Free-slot bookkeeping for one ring (the writing side owns it)."""

    def __init__(self, slots: int) -> None:
        self.slots = slots
        self._free = set(range(slots))
        self._cond = threading.Condition()
        self._dead = False
        self.peak = 0

    def acquire(self, timeout: float | None = 30.0) -> int:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._free:
                if self._dead:
                    raise ServingError("ring is closed")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if (
                    remaining is not None and remaining <= 0.0
                ) or not self._cond.wait(timeout=remaining):
                    raise ServingError(
                        f"timed out after {timeout}s waiting for a free "
                        f"ring slot ({self.slots} slots all in flight)"
                    )
            if self._dead:
                raise ServingError("ring is closed")
            slot = self._free.pop()
            self.peak = max(self.peak, self.slots - len(self._free))
            return slot

    def release(self, slot: int) -> None:
        with self._cond:
            self._free.add(slot)
            self._cond.notify()

    def in_use(self) -> int:
        with self._cond:
            return self.slots - len(self._free)

    def kill(self) -> None:
        """Wake every waiter with an error (the shard died)."""
        with self._cond:
            self._dead = True
            self._cond.notify_all()


def _slot_bytes_for(models: Iterable) -> int:
    """One slot must hold any request or response payload of ``models``:
    the sum of every node's (aligned) float64 tensor bytes bounds both
    the feeds and any requested output subset."""
    worst = 4096
    for model in models:
        total = 0
        for node in model.graph:
            elems = int(np.prod(node.output.shape, dtype=np.int64))
            total += _align(max(1, elems) * 8)
        worst = max(worst, total)
    return worst


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardConfig:
    """Everything a worker process needs to build its serving stack.

    Only primitives, paths and small frozen dataclasses — picklable
    under ``spawn`` as well as ``fork``. Models arrive as artifact
    *paths* (re-opened and signature-verified in the child), never as
    pickled graphs.
    """

    shard: int
    models: tuple[tuple[str, str], ...]  # (serving name, artifact path)
    workers: int
    max_batch: int
    batch_size: int
    budget_bytes: int | None
    seed: int
    scrub: str
    spill: str
    spill_policy: str
    prefetch: bool
    link: OffchipLink | None
    preload: bool
    req_ring: tuple[str, int, int]  # (shm name, slot_bytes, slots)
    resp_ring: tuple[str, int, int]


def _shard_worker_main(cfg: _ShardConfig, conn) -> None:  # pragma: no cover
    # covered by the cross-process tests; coverage can't see children
    try:
        _ShardWorker(cfg, conn).run()
    except BaseException as exc:
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


class _ShardWorker:
    """The event loop that runs inside one shard process."""

    def __init__(self, cfg: _ShardConfig, conn) -> None:
        self.cfg = cfg
        self.conn = conn
        self._send_lock = threading.Lock()
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._draining = False

        registry = ModelRegistry()
        for name, path in cfg.models:
            registry.load(path, name)
        self.pool = ArenaPool(
            registry,
            cfg.budget_bytes,
            seed=cfg.seed,
            scrub=cfg.scrub,
            reuse=True,
            batch_size=cfg.batch_size,
            spill=cfg.spill,
            spill_policy=cfg.spill_policy,
            prefetch=cfg.prefetch,
            link=cfg.link,
        )
        self.scheduler = RequestScheduler(
            registry,
            self.pool,
            workers=cfg.workers,
            max_batch=cfg.max_batch,
        ).start()
        preloaded = self.pool.preload() if cfg.preload else []

        req_name, req_slot_bytes, req_slots = cfg.req_ring
        resp_name, resp_slot_bytes, resp_slots = cfg.resp_ring
        self.req_ring = _TensorRing(req_slot_bytes, req_slots, name=req_name)
        self.resp_ring = _TensorRing(
            resp_slot_bytes, resp_slots, name=resp_name
        )
        self.resp_slots = _SlotPool(resp_slots)

        signal.signal(signal.SIGTERM, self._signal)
        signal.signal(signal.SIGINT, self._signal)
        self._send(("ready", os.getpid(), tuple(preloaded)))

    # ------------------------------------------------------------------
    def _signal(self, signum, frame) -> None:
        # drain: finish everything already accepted, then exit; the
        # main loop keeps answering free_resp so responses can retire
        self._draining = True

    def _send(self, msg: tuple) -> None:
        with self._send_lock:
            self.conn.send(msg)

    def _send_error(self, req_id: int, exc: BaseException, req_slot: int) -> None:
        try:
            self._send(("err", req_id, exc, req_slot))
        except Exception:
            # unpicklable exception: degrade to a string-carrying one
            try:
                self._send(
                    (
                        "err",
                        req_id,
                        ServingError(f"{type(exc).__name__}: {exc}"),
                        req_slot,
                    )
                )
            except Exception:  # parent is gone; nothing left to tell
                pass

    # ------------------------------------------------------------------
    def _on_request(self, req_id: int, model, outputs, descs, req_slot) -> None:
        if self._draining:
            self._send_error(
                req_id, ServingError("shard is draining"), req_slot
            )
            return
        try:
            feeds = self.req_ring.read(descs)
            future = self.scheduler.submit(model, feeds, outputs)
        except Exception as exc:
            self._send_error(req_id, exc, req_slot)
            return
        with self._pending_lock:
            self._pending += 1
        future.add_done_callback(
            lambda fut: self._on_done(req_id, req_slot, fut)
        )

    def _on_done(self, req_id: int, req_slot: int, future: Future) -> None:
        """Runs on a scheduler worker thread when a request resolves."""
        try:
            exc = future.exception()
            if exc is not None:
                self._send_error(req_id, exc, req_slot)
                return
            result: InferenceResult = future.result()
            try:
                resp_slot = self.resp_slots.acquire(timeout=60.0)
            except ServingError as slot_exc:
                self._send_error(req_id, slot_exc, req_slot)
                return
            try:
                descs = self.resp_ring.write(resp_slot, result.outputs)
            except Exception as write_exc:
                self.resp_slots.release(resp_slot)
                self._send_error(req_id, write_exc, req_slot)
                return
            self._send(
                ("res", req_id, result.stats, descs, req_slot, resp_slot)
            )
        finally:
            with self._pending_lock:
                self._pending -= 1

    def _stats_doc(self) -> dict[str, Any]:
        stats = self.scheduler.stats()
        return {
            "requests": stats.requests,
            "errors": stats.errors,
            "batches": stats.batches,
            "spill_bytes": stats.spill_bytes,
            "spill_stall_s": stats.spill_stall_s,
            "spill_hidden_s": stats.spill_hidden_s,
            "queue_depth": self.scheduler.queue_depth,
            "resp_ring_peak": self.resp_slots.peak,
            "pool": asdict(stats.pool) if stats.pool is not None else None,
        }

    # ------------------------------------------------------------------
    def run(self) -> None:
        shutdown = False
        while True:
            if (shutdown or self._draining) and self._pending_count() == 0:
                break
            if not self.conn.poll(0.05):
                continue
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                break  # parent is gone: drain and leave
            kind = msg[0]
            if kind == "req":
                _, req_id, model, outputs, descs, req_slot = msg
                if shutdown:
                    self._send_error(
                        req_id, ServingError("shard is draining"), req_slot
                    )
                else:
                    self._on_request(req_id, model, outputs, descs, req_slot)
            elif kind == "free_resp":
                self.resp_slots.release(msg[1])
            elif kind == "stats":
                self._send(("stats_res", msg[1], self._stats_doc()))
            elif kind == "shutdown":
                shutdown = True
        # answer whatever is still sitting unread in the pipe: requests
        # that lost the race against the drain decision get a clean
        # error here instead of silently dying with the EOF
        while True:
            try:
                if not self.conn.poll(0):
                    break
                msg = self.conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "req":
                self._send_error(
                    msg[1], ServingError("shard is draining"), msg[5]
                )
            elif msg[0] == "free_resp":
                self.resp_slots.release(msg[1])
        self.scheduler.shutdown(wait=True)
        self.pool.close()
        self.req_ring.close()
        self.resp_ring.close()
        try:
            self._send(("bye",))
        except Exception:
            pass
        self.conn.close()

    def _pending_count(self) -> int:
        with self._pending_lock:
            return self._pending


# ----------------------------------------------------------------------
# front-end side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardStats:
    """One shard's slice of the serving run (see
    :meth:`ShardedScheduler.shard_stats`)."""

    shard: int
    pid: int
    alive: bool
    #: models the rendezvous hash routes to this shard
    models: tuple[str, ...]
    #: requests completed through this shard (front-end count)
    requests: int
    errors: int
    #: most requests ever in flight to this shard at once
    inflight_peak: int
    #: child-side scheduler queue depth at snapshot time
    queue_depth: int
    #: executor runs inside the child (requests / batches = stacking)
    batches: int
    spill_bytes: int
    spill_stall_s: float
    spill_hidden_s: float
    #: request-ring occupancy: slots, high-water mark
    req_slots: int
    req_ring_peak: int
    resp_slots: int
    resp_ring_peak: int
    pool: PoolStats | None

    def to_doc(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["pool"] = asdict(self.pool) if self.pool is not None else None
        doc["models"] = list(self.models)
        return doc


@dataclass
class _Inflight:
    future: Future
    shard: int
    enqueued_at: float
    req_slot: int


class _ShardHandle:
    """Parent-side state for one worker process."""

    def __init__(
        self,
        shard: int,
        models: tuple[str, ...],
        req_ring: _TensorRing,
        resp_ring: _TensorRing,
    ) -> None:
        self.shard = shard
        self.models = models
        self.req_ring = req_ring
        self.resp_ring = resp_ring
        self.req_slots = _SlotPool(req_ring.slots)
        self.process = None
        self.conn = None
        self.pid = -1
        self.alive = False
        self.byed = False
        self.send_lock = threading.Lock()
        self.receiver: threading.Thread | None = None
        # front-end accounting (guarded by the scheduler's lock)
        self.completed = 0
        self.errors = 0
        self.inflight = 0
        self.inflight_peak = 0
        #: last child stats doc (refreshed by stats(); kept after death)
        self.child_doc: dict[str, Any] = {}

    def send(self, msg: tuple) -> None:
        with self.send_lock:
            self.conn.send(msg)


def _unlink_segments(names: list[str]) -> None:
    """finalizer backstop: never leak a segment, even without close()."""
    for name in names:
        try:
            shm = SharedMemory(name=name)
        except FileNotFoundError:
            continue
        shm.close()
        shm.unlink()


class ShardedScheduler:
    """Process-sharded serving front end with the thread scheduler's API.

    >>> with ShardedScheduler(registry, shards=4, workers=2) as server:
    ...     result = server.submit("rw-micro-a", feeds).result()

    Parameters mirror :class:`~repro.serving.scheduler.RequestScheduler`
    plus the :class:`~repro.serving.pool.ArenaPool` knobs, which pass
    through to every shard's private pool (``budget`` bounds each shard
    separately — a shard *is* a device). ``preload=True`` warms each
    shard's arenas for exactly the models routed to it, so preloads are
    never duplicated across shards.

    ``ring_slots`` bounds the per-shard in-flight window: the request
    ring has that many tensor slots, and ``submit`` exerts backpressure
    (blocks up to ``submit_timeout``) when all are in flight.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        shards: int,
        workers: int = 4,
        max_batch: int = 1,
        batch_size: int | None = None,
        budget=None,
        seed: int = 0,
        scrub: str = "never",
        reuse: bool = True,
        spill: str = "never",
        spill_policy: str = "belady",
        prefetch: bool = True,
        link: OffchipLink | None = None,
        preload: bool = False,
        ring_slots: int = 16,
        submit_timeout: float = 30.0,
        start_timeout: float = 120.0,
    ) -> None:
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        if not reuse:
            raise ServingError(
                "sharded serving requires arena reuse: each shard keeps "
                "its routed models' arenas warm (reuse=False is the "
                "single-process baseline; run it without shards)"
            )
        if not registry.names():
            raise ServingError("registry has no models to shard")
        if ring_slots < 1:
            raise ServingError(f"ring_slots must be >= 1, got {ring_slots}")
        self.registry = registry
        self.shards = shards
        self.workers = workers
        self.max_batch = max_batch
        self.batch_size = max_batch if batch_size is None else batch_size
        self.budget_bytes = (
            budget if budget is None or isinstance(budget, int)
            else budget.sram_bytes
        )
        self.seed = seed
        self.scrub = scrub
        self.spill = spill
        self.spill_policy = spill_policy
        self.prefetch = prefetch
        self.link = link
        self.preload = preload
        self.ring_slots = ring_slots
        self.submit_timeout = submit_timeout
        self.start_timeout = start_timeout

        #: sticky routing table: model name -> shard id, by rendezvous
        #: hash of the model's canonical graph signature under a
        #: least-loaded balance constraint (see :func:`balanced_routing`)
        self.routing = balanced_routing(
            {name: registry.get(name).signature for name in registry.names()},
            shards,
        )
        self._lock = threading.Lock()
        self._req_ids = itertools.count()
        self._inflight: dict[int, _Inflight] = {}
        self._latencies: list[float] = []
        self._completed = 0
        self._errors = 0
        self._stats_waiters: dict[int, tuple[threading.Event, list]] = {}
        self._stats_tokens = itertools.count()
        self._handles: list[_ShardHandle] = []
        self._spool_dir: Path | None = None
        self._started = False
        self._closed = False
        self._finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spool_models(self) -> dict[str, str]:
        """Artifact path per model, re-openable from a child process.

        Models the registry loaded from disk are re-opened by their
        original path; in-memory registrations are spooled once to a
        private directory the scheduler owns (and removes on close).
        """
        paths: dict[str, str] = {}
        for name in self.registry.names():
            path = self.registry.path_of(name)
            if path is None:
                if self._spool_dir is None:
                    self._spool_dir = Path(
                        tempfile.mkdtemp(prefix="repro-shards-")
                    )
                path = self._spool_dir / f"model-{len(paths)}.json"
                self.registry.get(name).save(path)
            paths[name] = str(path)
        return paths

    def start(self) -> "ShardedScheduler":
        if self._started:
            return self
        if self._closed:
            raise ServingError("sharded scheduler is closed")
        paths = self._spool_models()
        by_shard: dict[int, list[str]] = {i: [] for i in range(self.shards)}
        for name, shard in self.routing.items():
            by_shard[shard].append(name)
        segment_names: list[str] = []
        try:
            for shard in range(self.shards):
                models = tuple(sorted(by_shard[shard]))
                slot_bytes = _slot_bytes_for(
                    self.registry.get(name) for name in models
                )
                req_ring = _TensorRing(slot_bytes, self.ring_slots)
                segment_names.append(req_ring.name)
                resp_ring = _TensorRing(slot_bytes, self.ring_slots)
                segment_names.append(resp_ring.name)
                handle = _ShardHandle(shard, models, req_ring, resp_ring)
                # registered before spawn so a failed start tears the
                # rings down (and unlinks them) with everything else
                self._handles.append(handle)
                parent_conn, child_conn = _MP.Pipe()
                cfg = _ShardConfig(
                    shard=shard,
                    models=tuple((n, paths[n]) for n in models),
                    workers=self.workers,
                    max_batch=self.max_batch,
                    batch_size=self.batch_size,
                    budget_bytes=self.budget_bytes,
                    seed=self.seed,
                    scrub=self.scrub,
                    spill=self.spill,
                    spill_policy=self.spill_policy,
                    prefetch=self.prefetch,
                    link=self.link,
                    preload=self.preload,
                    req_ring=(req_ring.name, slot_bytes, self.ring_slots),
                    resp_ring=(resp_ring.name, slot_bytes, self.ring_slots),
                )
                process = _MP.Process(
                    target=_shard_worker_main,
                    args=(cfg, child_conn),
                    name=f"serve-shard-{shard}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                handle.process = process
                handle.conn = parent_conn
            self._await_ready()
        except BaseException:
            self._closed = True
            self._teardown(force=True)
            raise
        self._finalizer = weakref.finalize(
            self, _unlink_segments, segment_names
        )
        for handle in self._handles:
            handle.receiver = threading.Thread(
                target=self._receiver_loop,
                args=(handle,),
                name=f"shard-recv-{handle.shard}",
                daemon=True,
            )
            handle.receiver.start()
        self._started = True
        return self

    def _await_ready(self) -> None:
        """Block until every shard reports ready — or explain why not.

        A worker that dies during startup (artifact load failure, OOM
        during preload, import crash) must surface as a clear error
        here, never as futures that hang later.
        """
        deadline = time.monotonic() + self.start_timeout
        for handle in self._handles:
            while True:
                if handle.conn.poll(0.1):
                    try:
                        msg = handle.conn.recv()
                    except (EOFError, OSError):
                        msg = None
                    if msg is not None and msg[0] == "ready":
                        handle.pid = msg[1]
                        handle.alive = True
                        break
                    detail = (
                        f": {msg[1]}" if msg is not None and msg[0] == "fatal"
                        else ""
                    )
                    handle.process.join(timeout=5.0)
                    raise ServingError(
                        f"shard {handle.shard} died during startup"
                        f"{detail} (exit code {handle.process.exitcode}, "
                        f"models {list(handle.models)})"
                    )
                if not handle.process.is_alive():
                    raise ServingError(
                        f"shard {handle.shard} died during startup "
                        f"(exit code {handle.process.exitcode}, models "
                        f"{list(handle.models)})"
                    )
                if time.monotonic() > deadline:
                    raise ServingError(
                        f"shard {handle.shard} did not become ready "
                        f"within {self.start_timeout}s"
                    )

    def shutdown(self, wait: bool = True) -> None:
        """Drain every shard, stop the workers, unlink all segments.

        Idempotent; also reachable as :meth:`close` and ``__exit__``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._started = False
        for handle in self._handles:
            if handle.alive:
                try:
                    handle.send(("shutdown",))
                except (OSError, ValueError):
                    pass
        if wait:
            deadline = time.monotonic() + 30.0
            for handle in self._handles:
                if handle.process is not None:
                    handle.process.join(
                        timeout=max(0.1, deadline - time.monotonic())
                    )
        self._teardown(force=True)

    close = shutdown

    def _teardown(self, force: bool) -> None:
        for handle in self._handles:
            if handle.process is not None and handle.process.is_alive():
                if force:
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
            handle.alive = False
            handle.req_slots.kill()
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            if (
                handle.receiver is not None
                and handle.receiver is not threading.current_thread()
            ):
                handle.receiver.join(timeout=5.0)
            handle.req_ring.close()
            handle.resp_ring.close()
            handle.req_ring.unlink()
            handle.resp_ring.unlink()
        self._fail_inflight(
            None, ServingError("sharded scheduler shut down")
        )
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None

    def __enter__(self) -> "ShardedScheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def route(self, model: str) -> int:
        """The shard ``model`` is sticky-routed to."""
        shard = self.routing.get(model)
        if shard is None:
            self.registry.get(model)  # raises the canonical unknown-model
            raise ServingError(f"model {model!r} has no route")
        return shard

    def submit(
        self,
        model: str,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
    ) -> Future:
        """Enqueue one inference on the model's sticky shard; resolves
        to an :class:`~repro.serving.scheduler.InferenceResult`. The
        feed tensors are written into the shard's shared-memory request
        ring — only descriptors cross the pipe."""
        shard = self.route(model)
        if not self._started or self._closed:
            raise ServingError(
                "sharded scheduler is not running (call start())"
            )
        handle = self._handles[shard]
        if not handle.alive:
            raise ServingError(
                f"shard {shard} is dead; requests for {model!r} cannot "
                "be served"
            )
        req_slot = handle.req_slots.acquire(timeout=self.submit_timeout)
        future: Future = Future()
        enqueued_at = time.perf_counter()
        req_id = next(self._req_ids)
        try:
            descs = handle.req_ring.write(req_slot, feeds)
            with self._lock:
                self._inflight[req_id] = _Inflight(
                    future, shard, enqueued_at, req_slot
                )
                handle.inflight += 1
                handle.inflight_peak = max(
                    handle.inflight_peak, handle.inflight
                )
            handle.send(
                (
                    "req",
                    req_id,
                    model,
                    list(outputs) if outputs is not None else None,
                    descs,
                    req_slot,
                )
            )
        except BaseException:
            with self._lock:
                if self._inflight.pop(req_id, None) is not None:
                    handle.inflight -= 1
            handle.req_slots.release(req_slot)
            raise
        return future

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    def _receiver_loop(self, handle: _ShardHandle) -> None:
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "res":
                self._on_result(handle, *msg[1:])
            elif kind == "err":
                self._on_error(handle, *msg[1:])
            elif kind == "stats_res":
                self._on_stats(handle, msg[1], msg[2])
            elif kind == "bye":
                handle.byed = True
        # the shard is gone (clean or not): fail only ITS in-flight
        # requests, wake its slot waiters, leave other shards serving.
        # Even after a clean "bye" nothing may remain unresolved — a
        # request can lose the race against the child's drain
        handle.alive = False
        handle.req_slots.kill()
        detail = (
            "exited while the request was in flight"
            if handle.byed
            else "died; its in-flight requests are lost"
        )
        self._fail_inflight(
            handle.shard,
            ServingError(f"shard {handle.shard} (pid {handle.pid}) {detail}"),
        )
        # unblock any stats() call waiting on this shard
        with self._lock:
            waiters = list(self._stats_waiters.values())
        for event, _sink in waiters:
            event.set()

    def _pop_inflight(self, handle: _ShardHandle, req_id: int):
        with self._lock:
            entry = self._inflight.pop(req_id, None)
            if entry is not None:
                handle.inflight -= 1
        return entry

    def _on_result(
        self, handle, req_id, stats: RequestStats, descs, req_slot, resp_slot
    ) -> None:
        entry = self._pop_inflight(handle, req_id)
        views = handle.resp_ring.read(descs)
        outputs = {name: view.copy() for name, view in views.items()}
        try:
            handle.send(("free_resp", resp_slot))
        except (OSError, ValueError):
            pass
        handle.req_slots.release(req_slot)
        if entry is None:
            return
        latency = time.perf_counter() - entry.enqueued_at
        delivered = entry.future.set_running_or_notify_cancel()
        with self._lock:
            if delivered:
                self._completed += 1
                handle.completed += 1
                self._latencies.append(latency)
        if delivered:
            entry.future.set_result(
                InferenceResult(outputs=outputs, stats=stats)
            )

    def _on_error(self, handle, req_id, exc, req_slot) -> None:
        entry = self._pop_inflight(handle, req_id)
        handle.req_slots.release(req_slot)
        if entry is None:
            return
        latency = time.perf_counter() - entry.enqueued_at
        delivered = entry.future.set_running_or_notify_cancel()
        with self._lock:
            if delivered:
                self._errors += 1
                handle.errors += 1
                self._latencies.append(latency)
        if delivered:
            entry.future.set_exception(exc)

    def _fail_inflight(self, shard: int | None, exc: Exception) -> None:
        with self._lock:
            doomed = [
                (req_id, entry)
                for req_id, entry in self._inflight.items()
                if shard is None or entry.shard == shard
            ]
            for req_id, entry in doomed:
                del self._inflight[req_id]
                self._handles[entry.shard].inflight -= 1
        for _req_id, entry in doomed:
            if entry.future.set_running_or_notify_cancel():
                with self._lock:
                    self._errors += 1
                    self._handles[entry.shard].errors += 1
                    self._latencies.append(
                        time.perf_counter() - entry.enqueued_at
                    )
                entry.future.set_exception(exc)

    def _on_stats(self, handle: _ShardHandle, token: int, doc: dict) -> None:
        handle.child_doc = doc
        with self._lock:
            waiter = self._stats_waiters.get(token)
        if waiter is not None:
            event, sink = waiter
            sink.append(handle.shard)
            if len(sink) >= sum(1 for h in self._handles if h.alive):
                event.set()

    def _refresh_child_stats(self, timeout: float = 5.0) -> None:
        live = [h for h in self._handles if h.alive]
        if not live:
            return
        token = next(self._stats_tokens)
        event = threading.Event()
        with self._lock:
            self._stats_waiters[token] = (event, [])
        try:
            for handle in live:
                try:
                    handle.send(("stats", token))
                except (OSError, ValueError):
                    pass
            event.wait(timeout)
        finally:
            with self._lock:
                self._stats_waiters.pop(token, None)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def shard_stats(self, refresh: bool = True) -> list[ShardStats]:
        """A :class:`ShardStats` snapshot per shard (live child-side
        numbers are fetched over the control pipe; a dead shard reports
        its last known ones)."""
        if refresh and self._started:
            self._refresh_child_stats()
        out = []
        with self._lock:
            for handle in self._handles:
                doc = handle.child_doc
                pool_doc = doc.get("pool")
                out.append(
                    ShardStats(
                        shard=handle.shard,
                        pid=handle.pid,
                        alive=handle.alive,
                        models=handle.models,
                        requests=handle.completed,
                        errors=handle.errors,
                        inflight_peak=handle.inflight_peak,
                        queue_depth=doc.get("queue_depth", 0),
                        batches=doc.get("batches", 0),
                        spill_bytes=doc.get("spill_bytes", 0),
                        spill_stall_s=doc.get("spill_stall_s", 0.0),
                        spill_hidden_s=doc.get("spill_hidden_s", 0.0),
                        req_slots=handle.req_slots.slots,
                        req_ring_peak=handle.req_slots.peak,
                        resp_slots=handle.resp_ring.slots,
                        resp_ring_peak=doc.get("resp_ring_peak", 0),
                        pool=(
                            PoolStats(**pool_doc)
                            if pool_doc is not None
                            else None
                        ),
                    )
                )
        return out

    def stats(self) -> ServingStats:
        """Aggregate :class:`ServingStats` across every shard.

        Latencies are *end-to-end* (submit to response, IPC included);
        batches, spill accounting and pool stats are summed from the
        shards' own schedulers.
        """
        shards = self.shard_stats()
        pool = None
        pools = [s.pool for s in shards if s.pool is not None]
        if pools:
            pool = PoolStats(
                **{
                    field: sum(getattr(p, field) for p in pools)
                    for field in PoolStats.__dataclass_fields__
                }
            )
        with self._lock:
            return ServingStats(
                requests=self._completed,
                errors=self._errors,
                batches=sum(s.batches for s in shards),
                latencies_s=tuple(self._latencies),
                pool=pool,
                spill_bytes=sum(s.spill_bytes for s in shards),
                spill_stall_s=sum(s.spill_stall_s for s in shards),
                spill_hidden_s=sum(s.spill_hidden_s for s in shards),
            )
