"""Precision casting: int8 what-if studies."""

import pytest

from repro.analysis.quantization import cast_graph
from repro.graph.tensor import DType
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.topological import kahn_schedule


class TestCastGraph:
    def test_all_tensors_retyped(self, concat_conv_graph):
        g8 = cast_graph(concat_conv_graph, "int8")
        assert all(n.output.dtype is DType.INT8 for n in g8)

    def test_shapes_and_wiring_preserved(self, concat_conv_graph):
        g8 = cast_graph(concat_conv_graph, "int8")
        for node in concat_conv_graph:
            assert g8.node(node.name).output.shape == node.output.shape
            assert g8.node(node.name).inputs == node.inputs

    def test_input_attr_updated(self, concat_conv_graph):
        g8 = cast_graph(concat_conv_graph, "int8")
        assert g8.node("x").attrs["dtype"] == "int8"

    def test_peak_scales_by_width_ratio(self, concat_conv_graph):
        g8 = cast_graph(concat_conv_graph, "int8")
        sched = kahn_schedule(concat_conv_graph)
        sched8 = kahn_schedule(g8)
        p32 = simulate_schedule(concat_conv_graph, sched).peak_bytes
        p8 = simulate_schedule(g8, sched8).peak_bytes
        assert p32 == 4 * p8

    def test_fp16_halves(self, chain_graph):
        g16 = cast_graph(chain_graph, DType.FLOAT16)
        sched = kahn_schedule(chain_graph)
        p32 = simulate_schedule(chain_graph, sched).peak_bytes
        p16 = simulate_schedule(g16, kahn_schedule(g16)).peak_bytes
        assert p32 == 2 * p16

    def test_optimal_reduction_invariant(self, concat_conv_graph):
        """Quantisation rescales peaks but not the scheduler's *relative*
        win — the ratio is dtype-independent."""
        g8 = cast_graph(concat_conv_graph, "int8")

        def ratio(g):
            base = simulate_schedule(g, kahn_schedule(g)).peak_bytes
            return base / dp_schedule(g).peak_bytes

        assert ratio(concat_conv_graph) == pytest.approx(ratio(g8))

    def test_quantization_can_unlock_devices(self):
        from repro.models.swiftnet import swiftnet_cell_a
        from repro.scheduler.device import DeviceSpec, fit_to_device

        g = swiftnet_cell_a()
        tiny = DeviceSpec("tiny", 96 * 1024)
        assert not fit_to_device(g, tiny).fits
        assert fit_to_device(cast_graph(g, "int8"), tiny).fits

    def test_executable_after_cast(self, chain_graph):
        """The executor still runs a cast graph (it computes in float64
        internally; dtype drives the memory model)."""
        from repro.runtime.executor import Executor, random_feeds

        g8 = cast_graph(chain_graph, "int8")
        out = Executor(g8).run(random_feeds(g8))
        assert out
