"""Search-space complexity analysis (paper Appendix D / Fig 5)."""

import math


from repro.analysis.complexity import (
    complexity_of,
    count_downsets,
    naive_recursion_size,
)
from repro.graph.builder import GraphBuilder

from tests.conftest import random_dag_graph


def _parallel_branches(k: int):
    """The Fig 16 worst-case topology: entry -> k independent nodes -> exit."""
    b = GraphBuilder(f"fig16-{k}")
    x = b.input("x", (1, 2, 2))
    mids = [b.conv2d(x, 1, name=f"m{i}") for i in range(k)]
    b.concat(mids, name="exit")
    return b.build()


class TestNaiveRecursion:
    def test_chain_is_linear(self, chain_graph):
        # a chain has exactly one order: tree size = number of nodes
        assert naive_recursion_size(chain_graph) == len(chain_graph)

    def test_fig16_topology_is_factorial(self):
        g = _parallel_branches(5)
        # entry + 5! interleavings of the branches + exit positions:
        # the tree size must dominate 5!
        assert naive_recursion_size(g) >= math.factorial(5)

    def test_cap_returns_none(self):
        g = _parallel_branches(12)
        assert naive_recursion_size(g, cap=1000) is None


class TestDownsetCount:
    def test_chain(self, chain_graph):
        # a chain of n nodes has n+1 downsets (prefixes)
        assert count_downsets(chain_graph) == len(chain_graph) + 1

    def test_fig16_is_two_to_the_k(self):
        g = _parallel_branches(6)
        # downsets: empty, {x}, any subset of mids after x, + full
        assert count_downsets(g) == 2 + 2**6

    def test_matches_dp_memoization(self):
        """The analytic count equals what the DP actually memoises."""
        from repro.scheduler.dp import dp_schedule

        for seed in range(5):
            g = random_dag_graph(9, seed)
            res = dp_schedule(g)
            assert res.states_memoized == count_downsets(g)


class TestReport:
    def test_collapse_factor_on_fig16(self):
        g = _parallel_branches(6)
        rep = complexity_of(g)
        # 6! = 720 interleavings collapse onto 2^6 = 64 signatures
        assert rep.collapse_factor is not None
        assert rep.collapse_factor > 5

    def test_bounds_ordering(self):
        g = _parallel_branches(6)
        rep = complexity_of(g)
        assert rep.dp_states <= rep.dp_bound
        assert rep.dp_bound < rep.factorial_bound

    def test_capped_naive_reports_none(self):
        g = _parallel_branches(12)
        rep = complexity_of(g, naive_cap=1000)
        assert rep.naive_tree is None
        assert rep.collapse_factor is None

    def test_suite_cell_collapse(self):
        """On a real cell the signature collapse is dramatic — the
        quantitative form of Fig 5."""
        from repro.models.swiftnet import swiftnet_cell_c

        rep = complexity_of(swiftnet_cell_c(), naive_cap=2_000_000)
        assert rep.dp_states < 50_000
        if rep.naive_tree is not None:
            assert rep.collapse_factor > 10
