"""The paper's benchmark suite, with its published reference numbers.

Maps every cell of Figs 10/11/13/15 to a graph factory plus the values
the paper reports, so each experiment harness can print
``paper vs measured`` side by side. All byte figures are KB as printed
in Fig 15; ratios are the Fig 10 bars; times are the Fig 13 bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.graph import Graph
from repro.models.darts import darts_normal_cell
from repro.models.randwire import randwire_stage
from repro.models.swiftnet import (
    swiftnet_cell_a,
    swiftnet_cell_b,
    swiftnet_cell_c,
)

__all__ = [
    "CellSpec",
    "BENCHMARK_SUITE",
    "suite_cells",
    "get_cell",
    "serving_suite",
    "PAPER_GEOMEANS",
]


@dataclass(frozen=True)
class CellSpec:
    """One evaluated cell and its paper-reported numbers."""

    key: str
    network: str
    cell: str
    dataset: str
    factory: Callable[[], Graph]
    #: Fig 15 peak KB: TFLite / DP+allocator / DP+rewriting+allocator
    paper_tflite_kb: float
    paper_dp_kb: float
    paper_gr_kb: float
    #: Fig 13 scheduling seconds: DP-only / with rewriting
    paper_time_dp_s: float
    paper_time_gr_s: float

    @property
    def display(self) -> str:
        return f"{self.network} {self.cell} ({self.dataset})"

    @property
    def paper_ratio_dp(self) -> float:
        """Fig 10 bar, DP + allocator."""
        return self.paper_tflite_kb / self.paper_dp_kb

    @property
    def paper_ratio_gr(self) -> float:
        """Fig 10 bar, DP + rewriting + allocator."""
        return self.paper_tflite_kb / self.paper_gr_kb


#: paper geomeans: Fig 10 (peak reduction) and Fig 11 at 256 KB (traffic)
PAPER_GEOMEANS = {
    "fig10_dp": 1.68,
    "fig10_gr": 1.86,
    "fig11_256kb": 1.76,
    "fig13_mean_dp_s": 40.6,
    "fig13_mean_gr_s": 48.8,
}


def _rw(n: int, channels: int, hw: int, seed: int, name: str):
    return lambda: randwire_stage(
        n=n, channels=channels, hw=hw, generator="ws", seed=seed, name=name
    )


BENCHMARK_SUITE: dict[str, CellSpec] = {
    spec.key: spec
    for spec in (
        CellSpec(
            key="darts-normal",
            network="DARTS",
            cell="Normal",
            dataset="ImageNet",
            factory=darts_normal_cell,
            paper_tflite_kb=1656,
            paper_dp_kb=903,
            paper_gr_kb=753,
            paper_time_dp_s=3.2,
            paper_time_gr_s=3.2,
        ),
        CellSpec(
            key="swiftnet-a",
            network="SwiftNet",
            cell="Cell A",
            dataset="HPD",
            factory=swiftnet_cell_a,
            paper_tflite_kb=552,
            paper_dp_kb=251,
            paper_gr_kb=226,
            paper_time_dp_s=5.7,
            paper_time_gr_s=42.1,
        ),
        CellSpec(
            key="swiftnet-b",
            network="SwiftNet",
            cell="Cell B",
            dataset="HPD",
            factory=swiftnet_cell_b,
            paper_tflite_kb=194,
            paper_dp_kb=82,
            paper_gr_kb=72,
            paper_time_dp_s=4.5,
            paper_time_gr_s=30.5,
        ),
        CellSpec(
            key="swiftnet-c",
            network="SwiftNet",
            cell="Cell C",
            dataset="HPD",
            factory=swiftnet_cell_c,
            paper_tflite_kb=70,
            paper_dp_kb=33,
            paper_gr_kb=20,
            paper_time_dp_s=27.8,
            paper_time_gr_s=39.3,
        ),
        CellSpec(
            key="randwire-c10-a",
            network="RandWire",
            cell="Cell A",
            dataset="CIFAR10",
            factory=_rw(n=24, channels=16, hw=32, seed=10, name="randwire-c10-a"),
            paper_tflite_kb=645,
            paper_dp_kb=459,
            paper_gr_kb=459,
            paper_time_dp_s=118.1,
            paper_time_gr_s=118.1,
        ),
        CellSpec(
            key="randwire-c10-b",
            network="RandWire",
            cell="Cell B",
            dataset="CIFAR10",
            factory=_rw(n=20, channels=32, hw=16, seed=11, name="randwire-c10-b"),
            paper_tflite_kb=330,
            paper_dp_kb=260,
            paper_gr_kb=260,
            paper_time_dp_s=15.1,
            paper_time_gr_s=15.1,
        ),
        CellSpec(
            key="randwire-c100-a",
            network="RandWire",
            cell="Cell A",
            dataset="CIFAR100",
            factory=_rw(n=24, channels=16, hw=32, seed=100, name="randwire-c100-a"),
            paper_tflite_kb=605,
            paper_dp_kb=359,
            paper_gr_kb=359,
            paper_time_dp_s=28.5,
            paper_time_gr_s=28.5,
        ),
        CellSpec(
            key="randwire-c100-b",
            network="RandWire",
            cell="Cell B",
            dataset="CIFAR100",
            factory=_rw(n=20, channels=32, hw=16, seed=101, name="randwire-c100-b"),
            paper_tflite_kb=350,
            paper_dp_kb=280,
            paper_gr_kb=280,
            paper_time_dp_s=74.4,
            paper_time_gr_s=74.4,
        ),
        CellSpec(
            key="randwire-c100-c",
            network="RandWire",
            cell="Cell C",
            dataset="CIFAR100",
            factory=_rw(n=16, channels=64, hw=8, seed=102, name="randwire-c100-c"),
            paper_tflite_kb=160,
            paper_dp_kb=115,
            paper_gr_kb=115,
            paper_time_dp_s=87.9,
            paper_time_gr_s=87.9,
        ),
    )
}


def suite_cells() -> list[CellSpec]:
    """All cells in the paper's presentation order."""
    return list(BENCHMARK_SUITE.values())


def get_cell(key: str) -> CellSpec:
    try:
        return BENCHMARK_SUITE[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark cell {key!r}; available: {sorted(BENCHMARK_SUITE)}"
        ) from None


def serving_suite() -> dict[str, Callable[[], Graph]]:
    """Micro cells for the serving benchmark and ``bench-serve`` CLI.

    Small irregularly wired stages in the regime the serving layer
    targets: per-request overhead (executor construction, arena
    allocation) rivals or exceeds kernel compute, so arena reuse — not
    raw FLOPs — decides throughput. The paper's benchmark cells remain
    available for compute-bound serving runs via ``--cell``.
    """
    return {
        "rw-micro-a": lambda: randwire_stage(
            n=10, channels=8, hw=2, generator="ws", seed=7, name="rw-micro-a"
        ),
        "rw-micro-b": lambda: randwire_stage(
            n=10, channels=8, hw=2, generator="ws", seed=11, name="rw-micro-b"
        ),
    }
