"""GraphIndex: bitset reachability and the downset/frontier algebra."""

import pytest

from repro.graph.analysis import GraphIndex, bits, popcount
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.graph.tensor import TensorSpec

from tests.conftest import random_dag_graph


def _mk(edges: list[tuple[str, str]], names: list[str]) -> Graph:
    g = Graph()
    for name in names:
        inputs = tuple(src for src, dst in edges if dst == name)
        g.add(
            Node(
                name=name,
                op="input" if not inputs else "blob",
                inputs=inputs,
                output=TensorSpec((1, 2, 2)),
            )
        )
    return g


@pytest.fixture
def idx() -> GraphIndex:
    #   a -> b -> d
    #   a -> c -> d,  c -> e
    g = _mk(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("c", "e")],
        ["a", "b", "c", "d", "e"],
    )
    return GraphIndex.build(g)


class TestBitHelpers:
    def test_bits_ascending(self):
        assert list(bits(0b101001)) == [0, 3, 5]

    def test_bits_empty(self):
        assert list(bits(0)) == []

    def test_popcount(self):
        assert popcount(0b1011) == 3


class TestIndex:
    def test_order_and_masks(self, idx):
        assert idx.order == ("a", "b", "c", "d", "e")
        assert idx.preds_mask[idx.index["d"]] == (
            (1 << idx.index["b"]) | (1 << idx.index["c"])
        )

    def test_full_mask(self, idx):
        assert idx.full_mask == 0b11111

    def test_names_roundtrip(self, idx):
        mask = idx.mask_of(["a", "d"])
        assert idx.names(mask) == ["a", "d"]
        assert idx.names([0, 3]) == ["a", "d"]

    def test_ancestors(self, idx):
        d = idx.index["d"]
        assert set(idx.names(idx.ancestors_mask[d])) == {"a", "b", "c"}

    def test_descendants(self, idx):
        a = idx.index["a"]
        assert set(idx.names(idx.descendants_mask[a])) == {"b", "c", "d", "e"}

    def test_comparable_mask(self, idx):
        c = idx.index["c"]
        assert set(idx.names(idx.comparable_mask(c))) == {"a", "c", "d", "e"}

    def test_initial_frontier(self, idx):
        assert idx.names(idx.initial_frontier()) == ["a"]

    def test_frontier_of(self, idx):
        scheduled = idx.mask_of(["a", "b"])
        assert set(idx.names(idx.frontier_of(scheduled))) == {"c"}

    def test_downset_of_frontier_inverts(self, idx):
        scheduled = idx.mask_of(["a", "c"])
        z = idx.frontier_of(scheduled)
        assert idx.downset_of_frontier(z) == scheduled

    def test_is_downset(self, idx):
        assert idx.is_downset(idx.mask_of(["a", "b"]))
        assert not idx.is_downset(idx.mask_of(["b"]))

    def test_width_positive(self, idx):
        assert idx.width >= 1


class TestFrontierUniquenessOnRandomDAGs:
    """The zero-indegree set uniquely determines the downset — the
    soundness of the paper's DP signature (Section 3.1)."""

    @pytest.mark.parametrize("seed", range(25))
    def test_roundtrip(self, seed):
        g = random_dag_graph(10, seed)
        idx = GraphIndex.build(g)
        # enumerate downsets by simulating all prefixes of many orders
        import random as _random

        rng = _random.Random(seed)
        from repro.scheduler.topological import random_topological

        seen: dict[int, int] = {}
        for _ in range(10):
            sched = random_topological(g, rng)
            mask = 0
            for name in sched:
                z = idx.frontier_of(mask)
                if z in seen:
                    assert seen[z] == mask
                else:
                    seen[z] = mask
                assert idx.downset_of_frontier(z) == mask
                mask |= 1 << idx.index[name]
