"""Adaptive soft budgeting (Algorithm 2)."""

import pytest

from repro.scheduler.budget import AdaptiveSoftBudgetScheduler
from repro.scheduler.dp import dp_schedule
from repro.scheduler.memory import simulate_schedule
from repro.scheduler.topological import kahn_schedule

from tests.conftest import random_dag_graph


class TestASB:
    def test_returns_optimal_peak(self, concat_conv_graph):
        opt = dp_schedule(concat_conv_graph).peak_bytes
        res = AdaptiveSoftBudgetScheduler().schedule(concat_conv_graph)
        assert res.peak_bytes == opt

    def test_hard_budget_is_kahn_peak(self, hourglass_graph):
        res = AdaptiveSoftBudgetScheduler().schedule(hourglass_graph)
        kahn_peak = simulate_schedule(
            hourglass_graph, kahn_schedule(hourglass_graph)
        ).peak_bytes
        assert res.hard_budget == kahn_peak

    def test_first_probe_at_hard_budget(self, hourglass_graph):
        res = AdaptiveSoftBudgetScheduler().schedule(hourglass_graph)
        assert res.probes[0].tau == res.hard_budget

    def test_last_probe_is_solution(self, hourglass_graph):
        res = AdaptiveSoftBudgetScheduler().schedule(hourglass_graph)
        assert res.probes[-1].outcome == "solution"

    def test_schedule_valid(self, hourglass_graph):
        res = AdaptiveSoftBudgetScheduler().schedule(hourglass_graph)
        res.schedule.validate(hourglass_graph)

    def test_tight_step_cap_triggers_bisection(self, hourglass_graph):
        res = AdaptiveSoftBudgetScheduler(max_states_per_step=2).schedule(
            hourglass_graph
        )
        outcomes = {p.outcome for p in res.probes}
        # with an allowance this tight the meta-search must have worked
        assert res.probes[-1].outcome == "solution"
        assert len(res.probes) >= 1
        # optimality preserved regardless of the trajectory
        assert res.peak_bytes == dp_schedule(hourglass_graph).peak_bytes or (
            "timeout" in outcomes
        )

    @pytest.mark.parametrize("seed", range(15))
    def test_optimal_on_random_dags(self, seed):
        g = random_dag_graph(10, seed)
        res = AdaptiveSoftBudgetScheduler(max_states_per_step=500).schedule(g)
        assert res.peak_bytes == dp_schedule(g).peak_bytes

    def test_total_wall_time_aggregates(self, hourglass_graph):
        res = AdaptiveSoftBudgetScheduler().schedule(hourglass_graph)
        assert res.total_wall_time_s >= sum(
            p.wall_time_s for p in res.probes[:-1]
        )

    def test_preallocated_passthrough(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("pre")
        x = b.input("x", (2, 4, 4))
        b.conv2d(x, 2, name="c")
        g = b.build()
        res = AdaptiveSoftBudgetScheduler(preallocated=("x",)).schedule(g)
        assert res.schedule.order[0] == "x"
