"""Seeded-defect corpus: the verifier's behavioural acceptance bar.

Every mutation class injected into a real compiled artifact must draw
at least one error from its expected diagnostic family, and clean
plans — every suite cell, across spill capacities, prefetch leads and
batch widths — must pass with zero findings (no false positives)."""

import json
from dataclasses import replace

import pytest

from repro.allocator.spill import min_capacity_bytes, plan_spill
from repro.analysis import (
    MUTATION_CLASSES,
    analyze_artifact,
    analyze_plan,
    iter_mutants,
)
from repro.compiler.pipeline import CompilationPipeline
from repro.models.suite import get_cell, suite_cells


@pytest.fixture(scope="module")
def artifact_doc():
    """A real artifact rich enough for every mutation class: embedded
    spill plan, prefetch layout, multi-window staged buffers, and a
    tiled plan below the whole-buffer floor for the tile classes."""
    model = CompilationPipeline("greedy").compile(
        get_cell("randwire-c10-a").factory()
    )
    floor = min_capacity_bytes(model.graph, model.schedule)
    cap = max(floor, model.plan.arena_bytes // 2)
    sp = plan_spill(
        model.graph, model.schedule, model.plan, cap, prefetch_lead=8
    )
    tile_floor = min_capacity_bytes(
        model.graph, model.schedule, tile_bytes=8192
    )
    sp_tiled = plan_spill(
        model.graph,
        model.schedule,
        model.plan,
        max(tile_floor, min(floor - 1, tile_floor * 2)),
        prefetch_lead=8,
        tile_bytes=8192,
    )
    return replace(model, spill_plans=(sp, sp_tiled)).to_doc()


class TestCorpus:
    def test_corpus_covers_at_least_eight_classes(self):
        assert len(MUTATION_CLASSES) >= 8

    def test_clean_artifact_has_zero_findings(self, artifact_doc):
        report = analyze_artifact(artifact_doc, level="full", batch_sizes=(1, 8))
        assert report.ok
        assert len(report) == 0, report.summary()

    def test_document_survives_json_round_trip(self, artifact_doc):
        doc = json.loads(json.dumps(artifact_doc))
        report = analyze_artifact(doc, level="full", batch_sizes=(1, 8))
        assert report.ok and len(report) == 0

    def test_every_class_applies_to_this_artifact(self, artifact_doc):
        names = [m.name for m in iter_mutants(artifact_doc)]
        assert names == list(MUTATION_CLASSES)

    def test_every_mutant_is_caught(self, artifact_doc):
        # mutate the JSON round-tripped form: exactly what a corrupted
        # on-disk artifact looks like
        doc = json.loads(json.dumps(artifact_doc))
        caught = {}
        for mutant in iter_mutants(doc):
            report = analyze_artifact(
                mutant.doc, level="full", batch_sizes=(1, 8)
            )
            hits = {d.code for d in report.errors} & mutant.expect_codes
            assert not report.ok, (
                f"{mutant.name} escaped the verifier: {mutant.description}"
            )
            assert hits, (
                f"{mutant.name} was flagged, but with none of the expected "
                f"codes {sorted(mutant.expect_codes)}; got "
                f"{sorted(report.codes())}"
            )
            caught[mutant.name] = hits
        assert set(caught) == set(MUTATION_CLASSES)

    def test_mutants_never_touch_the_original(self, artifact_doc):
        before = json.dumps(artifact_doc, sort_keys=True)
        for _ in iter_mutants(artifact_doc):
            pass
        assert json.dumps(artifact_doc, sort_keys=True) == before


class TestNoFalsePositives:
    """Clean compiled plans across the whole suite must verify clean."""

    def test_clean_sweep(self):
        checked = 0
        for cell in suite_cells():
            model = CompilationPipeline("greedy").compile(cell.factory())
            floor = min_capacity_bytes(model.graph, model.schedule)
            arena = model.plan.arena_bytes
            capacities = sorted(
                {
                    floor,
                    max(floor, arena // 2),
                    max(floor, arena * 3 // 4),
                    max(floor, arena),
                }
            )
            tile_floor = min_capacity_bytes(
                model.graph, model.schedule, tile_bytes=8192
            )
            for lead in (0, 8):
                spills = tuple(
                    plan_spill(
                        model.graph,
                        model.schedule,
                        model.plan,
                        cap,
                        prefetch_lead=lead,
                    )
                    for cap in capacities
                ) + tuple(
                    plan_spill(
                        model.graph,
                        model.schedule,
                        model.plan,
                        cap,
                        prefetch_lead=lead,
                        tile_bytes=8192,
                    )
                    # the tile floor itself can be defeated by allocator
                    # fragmentation; 2x floor (clamped below the whole-
                    # buffer floor) always plans
                    for cap in sorted(
                        {
                            max(tile_floor, min(floor - 1, tile_floor * 2)),
                            max(floor, arena // 2),
                        }
                    )
                )
                report = analyze_plan(
                    model.graph,
                    model.schedule,
                    model.plan,
                    spills,
                    level="full",
                    batch_sizes=(1, 8),
                )
                assert report.ok and len(report) == 0, (
                    f"false positive on {cell.key} (lead={lead}, "
                    f"capacities={capacities}):\n{report.summary()}"
                )
                checked += 1
        assert checked == len(suite_cells()) * 2
