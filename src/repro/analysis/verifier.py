"""Static plan verification: prove compiled artifacts safe without running them.

The compile pipeline stacks three interacting plans per artifact — the
arena's byte offsets (:class:`~repro.allocator.arena.AllocationPlan`),
the tiered-arena staging windows
(:class:`~repro.allocator.spill.SpillPlan`) and the overlapped-transfer
layout (:class:`~repro.allocator.spill.PrefetchPlan`). Their invariants
used to be checked dynamically: execute and compare bitwise, or trip an
executor-side assertion. This module proves the full invariant set
*statically*, from the plan documents alone:

schedule legality
    a complete, duplicate-free topological order in which every feed is
    produced before it is read, and no shared-buffer write clobbers
    bytes a later step still reads (the executor's write-hazard rule).
arena soundness (byte-exact)
    every buffer's ``[offset, offset + nbytes)`` stays inside the
    declared arena, no two *temporally live* buffers overlap in address
    space, every kernel read is covered by a preceding write at
    intra-buffer byte granularity, and the declared ``arena_bytes``
    equals the peak of the recomputed liveness trace — an understated
    peak means batched arena rows (stride ``arena_bytes``) would
    overlap; an overstated one breaks serving admission pricing.
spill soundness
    the capacity respects :func:`~repro.allocator.spill.min_capacity_bytes`,
    every step that touches a spilled buffer falls inside one of its
    staging windows (the fetch-after-first-write / writeback-iff-dirty
    rules are *derived* from window entry/exit, so a covered touch set
    is exactly what makes them correct), staging slots and resident
    buffers never overlap while simultaneously live, and off-chip home
    slots are pairwise disjoint.
prefetch race detection
    the transfer engine may start a window's fetch up to ``lead`` steps
    early; modelling each async transfer as holding its destination
    byte range for the whole lead-extended interval, no transfer range
    may overlap a concurrently-live compute read/write (a resident
    buffer's lifetime or another staging window). This is the static
    analogue of the runtime byte-bounds shadow checker in
    :mod:`repro.analysis.shadow`, which replays the same property over
    the executor's compiled ``_STEP_ENQUEUE``/``_STEP_SYNC`` rows.

Findings come back as :class:`~repro.analysis.diagnostics.Diagnostic`
records inside an :class:`~repro.analysis.diagnostics.AnalysisReport`;
nothing here raises on a corrupt plan — raising is the caller's policy
(:meth:`CompiledModel.load` turns error reports into
:class:`~repro.exceptions.PlanVerificationError`).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.allocator.lifetimes import BufferLifetime, compute_lifetimes
from repro.allocator.spill import (
    SPILL_FORMAT,
    PrefetchPlan,
    SpillPlan,
    StageWindow,
    step_touches,
)
from repro.analysis.diagnostics import ERROR, WARNING, AnalysisReport, Diagnostic
from repro.exceptions import ExecutionError, GraphError
from repro.graph.graph import Graph
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = [
    "VERIFY_LEVELS",
    "analyze_plan",
    "analyze_model",
    "analyze_artifact",
]

#: verification levels: ``none`` skips analysis entirely, ``basic``
#: proves schedule legality + arena/spill/prefetch layout soundness,
#: ``full`` adds the byte-exact read-coverage replay
VERIFY_LEVELS = ("none", "basic", "full")


# ----------------------------------------------------------------------
# byte-interval bookkeeping (read-coverage replay)
# ----------------------------------------------------------------------
def _covers(ivals: list[tuple[int, int]], lo: int, hi: int) -> bool:
    """Whether sorted disjoint ``ivals`` fully cover ``[lo, hi)``."""
    for a, b in ivals:
        if a <= lo < b:
            if hi <= b:
                return True
            lo = b
        elif a > lo:
            return False
    return lo >= hi


def _add(ivals: list[tuple[int, int]], lo: int, hi: int) -> None:
    """Insert ``[lo, hi)`` into sorted disjoint ``ivals``, merging."""
    out: list[tuple[int, int]] = []
    placed = False
    for a, b in ivals:
        if b < lo or hi < a:
            if a > hi and not placed:
                out.append((lo, hi))
                placed = True
            out.append((a, b))
        else:
            lo, hi = min(lo, a), max(hi, b)
    if not placed:
        out.append((lo, hi))
    out.sort()
    ivals[:] = out


def _ranges_overlap(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> bool:
    return a_lo < b_hi and b_lo < a_hi


# ----------------------------------------------------------------------
# individual check families (each appends Diagnostics)
# ----------------------------------------------------------------------
def _check_schedule(
    graph: Graph, order: Sequence[str], diags: list[Diagnostic]
) -> dict[str, int] | None:
    """Duplicate/coverage/topological legality. Returns the position
    map when the order is usable for byte-level analysis (complete and
    duplicate-free; topological violations are reported but do not
    block further checks), else ``None``."""
    pos: dict[str, int] = {}
    broken = False
    for i, name in enumerate(order):
        if name in pos:
            broken = True
            diags.append(
                Diagnostic(
                    code="SCHED_DUPLICATE",
                    severity=ERROR,
                    message=f"schedule repeats node {name!r} "
                    f"(first at step {pos[name]})",
                    step=i,
                    node=name,
                    plan="schedule",
                )
            )
        else:
            pos[name] = i
    names = set(graph.node_names)
    missing = sorted(names - pos.keys())
    extra = sorted(pos.keys() - names)
    if missing or extra:
        broken = True
        diags.append(
            Diagnostic(
                code="SCHED_COVERAGE",
                severity=ERROR,
                message="schedule does not cover the graph "
                f"(missing={missing[:5]}, extra={extra[:5]})",
                plan="schedule",
            )
        )
    if broken:
        return None
    ok = True
    for src, dst in graph.edges():
        if pos[src] >= pos[dst]:
            ok = False
            diags.append(
                Diagnostic(
                    code="SCHED_TOPO",
                    severity=ERROR,
                    message=f"{dst!r} executes at step {pos[dst]} but its "
                    f"feed {src!r} is not produced until step {pos[src]}",
                    step=pos[dst],
                    node=dst,
                    plan="schedule",
                )
            )
    return pos if ok else None


def _check_hazards(
    graph: Graph,
    model: BufferModel,
    pos: Mapping[str, int],
    intra: Mapping[str, int],
    diags: list[Diagnostic],
) -> None:
    """Static port of the executor's shared-buffer write-hazard rule:
    a later member of a buffer overwriting an earlier member's bytes is
    illegal while any still-later step reads the earlier tensor —
    except a view node copying an aliased operand's identical bytes."""
    from repro.graph.analysis import bits

    idx = model.index

    def aliased_inputs(name: str) -> set[str]:
        node = graph.node(name)
        indices = node.attrs.get("view_inputs")
        if indices is None:
            indices = range(len(node.inputs))
        return {node.inputs[j] for j in indices}

    for b in range(model.n_buffers):
        members = [
            (idx.order[i], intra[idx.order[i]], idx.out_bytes[i])
            for i in bits(model.buf_members[b])
        ]
        for vi, (a, a_off, a_sz) in enumerate(members):
            for b2, b_off, b_sz in members[vi + 1 :]:
                if not _ranges_overlap(a_off, a_off + a_sz, b_off, b_off + b_sz):
                    continue
                early, late = (a, b2) if pos[a] <= pos[b2] else (b2, a)
                writer = graph.node(late)
                if writer.memory.view and early in aliased_inputs(late):
                    continue  # byte-preserving copy-back
                clobbered = [
                    c
                    for c in graph.succs(early)
                    if c != late and pos[c] > pos[late]
                ]
                if clobbered:
                    lo = max(a_off, b_off)
                    hi = min(a_off + a_sz, b_off + b_sz)
                    diags.append(
                        Diagnostic(
                            code="SCHED_HAZARD",
                            severity=ERROR,
                            message=f"{late!r} overwrites {early!r}'s bytes "
                            f"at step {pos[late]}, but {clobbered[0]!r} "
                            f"still reads {early!r} at step "
                            f"{pos[clobbered[0]]}",
                            step=pos[late],
                            node=late,
                            buffer=b,
                            byte_range=(lo, hi),
                            plan="schedule",
                        )
                    )


def _check_arena(
    model: BufferModel,
    lifetimes: Sequence[BufferLifetime],
    offsets: Mapping[int, int],
    arena_bytes: int,
    batched: bool,
    diags: list[Diagnostic],
) -> None:
    """Byte-exact arena soundness: coverage, bounds, live-pair overlap
    and strict peak equality (both shipped allocators set
    ``arena_bytes`` to the exact high-water mark, and every buffer is
    live at some step, so any inequality is a corruption)."""
    n_buf = model.n_buffers
    missing = [b for b in range(n_buf) if b not in offsets]
    extra = sorted(set(offsets) - set(range(n_buf)))
    if missing or extra:
        diags.append(
            Diagnostic(
                code="ARENA_COVERAGE",
                severity=ERROR,
                message=f"allocation plan does not cover the graph's "
                f"{n_buf} buffers (missing offsets for {missing[:5]}, "
                f"unknown ids {extra[:5]})",
                buffer=missing[0] if missing else extra[0],
                plan="arena",
            )
        )
    placed = [lt for lt in lifetimes if lt.buffer_id in offsets]
    max_extent = 0
    for lt in placed:
        off = offsets[lt.buffer_id]
        max_extent = max(max_extent, off + lt.size)
        if off < 0 or off + lt.size > arena_bytes:
            diags.append(
                Diagnostic(
                    code="ARENA_BOUNDS",
                    severity=ERROR,
                    message=f"buffer {lt.buffer_id} at "
                    f"[{off}, {off + lt.size}) escapes the declared "
                    f"{arena_bytes}-byte arena",
                    step=lt.start,
                    buffer=lt.buffer_id,
                    byte_range=(off, off + lt.size),
                    plan="arena",
                )
            )
    for i, a in enumerate(placed):
        off_a = offsets[a.buffer_id]
        for b in placed[i + 1 :]:
            if not a.overlaps(b):
                continue
            off_b = offsets[b.buffer_id]
            if _ranges_overlap(off_a, off_a + a.size, off_b, off_b + b.size):
                diags.append(
                    Diagnostic(
                        code="ARENA_OVERLAP",
                        severity=ERROR,
                        message=f"live buffers {a.buffer_id} and "
                        f"{b.buffer_id} overlap: [{off_a}, {off_a + a.size}) "
                        f"vs [{off_b}, {off_b + b.size}) while both live "
                        f"at step {max(a.start, b.start)}",
                        step=max(a.start, b.start),
                        buffer=b.buffer_id,
                        byte_range=(
                            max(off_a, off_b),
                            min(off_a + a.size, off_b + b.size),
                        ),
                        plan="arena",
                    )
                )
    if not missing and arena_bytes > max_extent:
        diags.append(
            Diagnostic(
                code="ARENA_PEAK",
                severity=ERROR,
                message=f"declared arena peak {arena_bytes} is stale: the "
                f"recomputed liveness trace peaks at {max_extent} bytes "
                "(admission control would over-price this plan)",
                byte_range=(max_extent, arena_bytes),
                plan="arena",
            )
        )
    if batched and max_extent > arena_bytes:
        diags.append(
            Diagnostic(
                code="ARENA_ROW_OVERLAP",
                severity=ERROR,
                message=f"batched arena rows at stride {arena_bytes} would "
                f"overlap: the per-sample layout extends to byte "
                f"{max_extent}, so row N's tail aliases row N+1's head",
                byte_range=(arena_bytes, max_extent),
                plan="arena",
            )
        )


def _check_read_coverage(
    graph: Graph,
    model: BufferModel,
    order: Sequence[str],
    intra: Mapping[str, int],
    diags: list[Diagnostic],
) -> None:
    """Byte-exact dataflow replay: every byte a kernel reads must have
    been written by an earlier step (a feed, a producing kernel, or a
    member tensor of the same shared buffer)."""
    idx = model.index
    written: dict[int, list[tuple[int, int]]] = {}
    for s, name in enumerate(order):
        node = graph.node(name)
        for src in node.inputs:
            b = model.buffer_of[idx.index[src]]
            lo = intra[src]
            hi = lo + graph.node(src).output.bytes
            if not _covers(written.get(b, []), lo, hi):
                diags.append(
                    Diagnostic(
                        code="READ_UNCOVERED",
                        severity=ERROR,
                        message=f"{name!r} reads {src!r} (buffer {b} bytes "
                        f"[{lo}, {hi})) but no preceding step wrote all of "
                        "those bytes",
                        step=s,
                        node=name,
                        buffer=b,
                        byte_range=(lo, hi),
                        plan="arena",
                    )
                )
        b_own = model.buffer_of[idx.index[name]]
        lo = intra[name]
        _add(written.setdefault(b_own, []), lo, lo + node.output.bytes)


def _slot_bytes(
    model: BufferModel, b: int, tile_bytes: int | None
) -> int:
    """Staging-slot footprint of spilled buffer ``b`` — the whole
    buffer, or one tile under tile streaming (the executor's
    ``_slot_bytes`` rule, restated from the plan document)."""
    size = model.buf_size[b]
    if tile_bytes is None or tile_bytes <= 0:
        return size
    return min(size, tile_bytes)


def _staging_intervals(
    model: BufferModel,
    lifetimes: Sequence[BufferLifetime],
    resident_offsets: Mapping[int, int],
    windows: Mapping[int, tuple[StageWindow, ...]],
    leads: Mapping[int, tuple[int, ...]] | None,
    tile_bytes: int | None = None,
) -> list[tuple[int, int, int, int, str, int]]:
    """The resident region as (t0, t1, lo, hi, kind, buffer) intervals:
    resident buffers hold their slot for their whole lifetime; staging
    windows hold theirs for the window, head-extended by the window's
    prefetch lead when ``leads`` is given (the span an async fetch may
    occupy the slot). Under tile streaming (``tile_bytes``), a window's
    slot holds one tile, so its byte extent is tile-clamped — the
    tile-slot disjointness invariant runs through the same time×byte
    sweep as whole-buffer slots."""
    out: list[tuple[int, int, int, int, str, int]] = []
    lt_of = {lt.buffer_id: lt for lt in lifetimes}
    for b, off in resident_offsets.items():
        lt = lt_of.get(b)
        if lt is None:
            continue
        out.append((lt.start, lt.end, off, off + lt.size, "resident", b))
    for b, ws in windows.items():
        if not (0 <= b < model.n_buffers):
            continue
        for k, w in enumerate(ws):
            lead = 0
            if leads is not None:
                bl = leads.get(b, ())
                lead = bl[k] if k < len(bl) else 0
            out.append(
                (
                    max(0, w.start - lead),
                    w.end,
                    w.offset,
                    w.offset + _slot_bytes(model, b, tile_bytes),
                    "window",
                    b,
                )
            )
    return out


def _check_spill(
    graph: Graph,
    model: BufferModel,
    lifetimes: Sequence[BufferLifetime],
    sp: SpillPlan,
    touch: Sequence[tuple[int, ...]],
    diags: list[Diagnostic],
) -> None:
    tag = f"spill@{sp.capacity_bytes}"
    size = model.buf_size
    n_steps = len(touch)
    if sp.capacity_bytes <= 0:
        diags.append(
            Diagnostic(
                code="SPILL_CAPACITY",
                severity=ERROR,
                message=f"on-chip capacity must be positive, got "
                f"{sp.capacity_bytes}",
                plan=tag,
            )
        )
        return
    if sp.tile_bytes is not None and sp.tile_bytes <= 0:
        diags.append(
            Diagnostic(
                code="SPILL_TILE_GEOMETRY",
                severity=ERROR,
                message=f"tile_bytes must be positive when set, got "
                f"{sp.tile_bytes} — the tile partition of every staged "
                "buffer is undefined",
                plan=tag,
            )
        )
        # fall through with whole-buffer slots (_slot_bytes ignores a
        # non-positive tile size), so layout checks still run
    # the irreducible floor is per-plan: whole-buffer staging needs the
    # largest single-step working set of entire buffers, tile streaming
    # only the largest working set of tile slots
    floor = max(
        (
            sum(_slot_bytes(model, b, sp.tile_bytes) for b in bufs)
            for bufs in touch
        ),
        default=0,
    )
    if sp.capacity_bytes < floor:
        diags.append(
            Diagnostic(
                code="SPILL_FLOOR",
                severity=ERROR,
                message=f"capacity {sp.capacity_bytes} is below the "
                f"schedule's irreducible staging floor ({floor} bytes: "
                "the largest single-step working set"
                + (
                    f" of {sp.tile_bytes}-byte tile slots"
                    if sp.tile_bytes is not None
                    else ""
                )
                + "); no spill configuration can execute this plan",
                plan=tag,
            )
        )
    spilled = set(sp.spilled)
    bad_ids = sorted(b for b in spilled if not 0 <= b < model.n_buffers)
    if (
        set(sp.windows) != spilled
        or set(sp.home_offsets) != spilled
        or bad_ids
    ):
        diags.append(
            Diagnostic(
                code="SPILL_CONSISTENCY",
                severity=ERROR,
                message="spilled set, staging windows and home slots "
                f"disagree (spilled={len(spilled)}, "
                f"windows={len(sp.windows)}, homes={len(sp.home_offsets)}"
                f"{', unknown buffer ids ' + str(bad_ids[:5]) if bad_ids else ''})",
                plan=tag,
            )
        )
    resident = set(range(model.n_buffers)) - spilled
    if set(sp.resident_offsets) != resident:
        miss = sorted(resident - set(sp.resident_offsets))
        diags.append(
            Diagnostic(
                code="SPILL_CONSISTENCY",
                severity=ERROR,
                message="resident offsets do not cover the unspilled "
                f"buffers (missing {miss[:5]}, "
                f"{len(sp.resident_offsets)} offsets for "
                f"{len(resident)} resident buffers)",
                plan=tag,
            )
        )
    if sp.resident_bytes > sp.capacity_bytes:
        diags.append(
            Diagnostic(
                code="SPILL_CAPACITY",
                severity=ERROR,
                message=f"resident region ({sp.resident_bytes} bytes) "
                f"exceeds the {sp.capacity_bytes}-byte capacity",
                plan=tag,
            )
        )

    # window shape + touch coverage
    for b in sorted(spilled & set(sp.windows)):
        if not 0 <= b < model.n_buffers:
            continue
        ws = sp.windows[b]
        prev_end = -1
        for k, w in enumerate(ws):
            if w.start < 0 or w.end <= w.start or w.end > n_steps:
                diags.append(
                    Diagnostic(
                        code="SPILL_WINDOW_MALFORMED",
                        severity=ERROR,
                        message=f"buffer {b} staging window {k} "
                        f"[{w.start}, {w.end}) is malformed "
                        f"(schedule has {n_steps} steps)",
                        step=w.start,
                        buffer=b,
                        plan=tag,
                    )
                )
            elif w.start <= prev_end:
                diags.append(
                    Diagnostic(
                        code="SPILL_WINDOW_MALFORMED",
                        severity=ERROR,
                        message=f"buffer {b} staging windows {k - 1} and "
                        f"{k} overlap or are out of order",
                        step=w.start,
                        buffer=b,
                        plan=tag,
                    )
                )
            prev_end = max(prev_end, w.end - 1)
            lo = w.offset
            hi = lo + _slot_bytes(model, b, sp.tile_bytes)
            if w.offset < 0 or hi > sp.resident_bytes:
                diags.append(
                    Diagnostic(
                        code="SPILL_BOUNDS",
                        severity=ERROR,
                        message=f"buffer {b} staging slot [{lo}, {hi}) "
                        f"escapes the {sp.resident_bytes}-byte resident "
                        "region",
                        step=w.start,
                        buffer=b,
                        byte_range=(lo, hi),
                        plan=tag,
                    )
                )
        covered = [
            s
            for s in range(n_steps)
            if b in touch[s]
            and not any(w.start <= s < w.end for w in ws)
        ]
        for s in covered:
            diags.append(
                Diagnostic(
                    code="SPILL_WINDOW_MISS",
                    severity=ERROR,
                    message=f"step {s} touches spilled buffer {b} outside "
                    "every staging window — the kernel would read or "
                    "write an unstaged (or prematurely written-back) slot",
                    step=s,
                    buffer=b,
                    plan=tag,
                )
            )

    # resident bounds
    for b, off in sorted(sp.resident_offsets.items()):
        if not 0 <= b < model.n_buffers:
            continue
        if off < 0 or off + size[b] > sp.resident_bytes:
            diags.append(
                Diagnostic(
                    code="SPILL_BOUNDS",
                    severity=ERROR,
                    message=f"resident buffer {b} at "
                    f"[{off}, {off + size[b]}) escapes the "
                    f"{sp.resident_bytes}-byte resident region",
                    buffer=b,
                    byte_range=(off, off + size[b]),
                    plan=tag,
                )
            )

    # byte-disjointness of simultaneously-live resident slots and
    # staging windows (lead 0: the inline layout)
    ivals = _staging_intervals(
        model,
        lifetimes,
        sp.resident_offsets,
        sp.windows,
        leads=None,
        tile_bytes=sp.tile_bytes,
    )
    _check_interval_overlap(ivals, "SPILL_OVERLAP", tag, diags)

    # off-chip home slots: pairwise disjoint, inside the spill region
    homes = sorted(
        (off, off + size[b], b)
        for b, off in sp.home_offsets.items()
        if 0 <= b < model.n_buffers
    )
    for (lo_a, hi_a, a), (lo_b, hi_b, b2) in zip(homes, homes[1:]):
        if hi_a > lo_b:
            diags.append(
                Diagnostic(
                    code="SPILL_HOME_OVERLAP",
                    severity=ERROR,
                    message=f"off-chip home slots of buffers {a} and {b2} "
                    f"overlap: [{lo_a}, {hi_a}) vs [{lo_b}, {hi_b}) — a "
                    "writeback of one would corrupt the other",
                    buffer=b2,
                    byte_range=(lo_b, min(hi_a, hi_b)),
                    plan=tag,
                )
            )
    for lo, hi, b in homes:
        if lo < 0 or hi > sp.spill_bytes:
            diags.append(
                Diagnostic(
                    code="SPILL_HOME_BOUNDS",
                    severity=ERROR,
                    message=f"buffer {b} home slot [{lo}, {hi}) escapes "
                    f"the {sp.spill_bytes}-byte spill region",
                    buffer=b,
                    byte_range=(lo, hi),
                    plan=tag,
                )
            )


def _check_interval_overlap(
    ivals: list[tuple[int, int, int, int, str, int]],
    code: str,
    tag: str,
    diags: list[Diagnostic],
) -> None:
    """Any two intervals overlapping in time AND bytes are a layout
    corruption (for ``PREFETCH_RACE``: an async transfer's destination
    bytes collide with concurrently-live compute bytes)."""
    by_start = sorted(ivals, key=lambda iv: iv[0])
    for i, (t0a, t1a, loa, hia, ka, ba) in enumerate(by_start):
        for t0b, t1b, lob, hib, kb, bb in by_start[i + 1 :]:
            if t0b >= t1a:
                break  # sorted by start: no later interval overlaps a
            if not _ranges_overlap(loa, hia, lob, hib):
                continue
            if ka == "window" and kb == "window" and ba == bb and code == "SPILL_OVERLAP":
                # consecutive windows of one buffer may share a slot in
                # the inline layout only when time-disjoint — reaching
                # here means they aren't, which is a genuine overlap
                pass
            race = code == "PREFETCH_RACE"
            what_a = f"{'staging window' if ka == 'window' else 'resident buffer'} {ba}"
            what_b = f"{'staging window' if kb == 'window' else 'resident buffer'} {bb}"
            if race:
                mover = what_a if ka == "window" else what_b
                other = what_b if ka == "window" else what_a
                msg = (
                    f"async transfer into {mover}'s slot (bytes "
                    f"[{max(loa, lob)}, {min(hia, hib)})) may be in flight "
                    f"during steps [{max(t0a, t0b)}, {min(t1a, t1b)}) while "
                    f"{other} holds overlapping bytes — the engine would "
                    "race concurrently-live compute reads/writes"
                )
            else:
                msg = (
                    f"{what_a} and {what_b} overlap in bytes "
                    f"[{max(loa, lob)}, {min(hia, hib)}) while both live "
                    f"during steps [{max(t0a, t0b)}, {min(t1a, t1b)})"
                )
            diags.append(
                Diagnostic(
                    code=code,
                    severity=ERROR,
                    message=msg,
                    step=max(t0a, t0b),
                    buffer=bb,
                    byte_range=(max(loa, lob), min(hia, hib)),
                    plan=tag,
                )
            )


def _check_prefetch(
    model: BufferModel,
    lifetimes: Sequence[BufferLifetime],
    sp: SpillPlan,
    pf: PrefetchPlan,
    diags: list[Diagnostic],
) -> None:
    tag = f"prefetch@{sp.capacity_bytes}"
    spilled = set(sp.spilled)
    if pf.lead_steps < 0:
        diags.append(
            Diagnostic(
                code="PREFETCH_CONSISTENCY",
                severity=ERROR,
                message=f"prefetch lead must be >= 0, got {pf.lead_steps}",
                plan=tag,
            )
        )
    if (
        set(pf.windows) != spilled
        or set(pf.window_leads) != spilled
        or set(pf.resident_offsets) != set(sp.resident_offsets)
    ):
        diags.append(
            Diagnostic(
                code="PREFETCH_CONSISTENCY",
                severity=ERROR,
                message="prefetch layout buffer sets disagree with the "
                "base spill plan",
                plan=tag,
            )
        )
    for b in sorted(spilled & set(pf.windows) & set(sp.windows)):
        ws, base = pf.windows[b], sp.windows[b]
        if len(ws) != len(base) or any(
            w.start != bw.start or w.end != bw.end for w, bw in zip(ws, base)
        ):
            diags.append(
                Diagnostic(
                    code="PREFETCH_CONSISTENCY",
                    severity=ERROR,
                    message=f"buffer {b}: prefetch window bounds disagree "
                    "with the base staging windows",
                    buffer=b,
                    plan=tag,
                )
            )
        leads = pf.window_leads.get(b, ())
        if len(leads) != len(ws) or any(
            ld < 0 or ld > pf.lead_steps for ld in leads
        ):
            diags.append(
                Diagnostic(
                    code="PREFETCH_CONSISTENCY",
                    severity=ERROR,
                    message=f"buffer {b}: window leads are malformed "
                    f"(want {len(ws)} leads in [0, {pf.lead_steps}])",
                    buffer=b,
                    plan=tag,
                )
            )
        if not 0 <= b < model.n_buffers:
            continue
        for w in ws:
            lo = w.offset
            hi = lo + _slot_bytes(model, b, sp.tile_bytes)
            if w.offset < 0 or hi > pf.resident_bytes:
                diags.append(
                    Diagnostic(
                        code="PREFETCH_BOUNDS",
                        severity=ERROR,
                        message=f"buffer {b} prefetch staging slot "
                        f"[{lo}, {hi}) escapes the {pf.resident_bytes}-byte "
                        "region",
                        step=w.start,
                        buffer=b,
                        byte_range=(lo, hi),
                        plan=tag,
                    )
                )
    if pf.resident_bytes > sp.capacity_bytes:
        diags.append(
            Diagnostic(
                code="PREFETCH_CAPACITY",
                severity=ERROR,
                message=f"prefetch resident region ({pf.resident_bytes} "
                f"bytes) exceeds the {sp.capacity_bytes}-byte capacity",
                plan=tag,
            )
        )
    # the race model: each window's slot is occupied from the moment
    # its fetch may be enqueued (lead steps early) to window exit;
    # every pair of time-overlapping occupations must be byte-disjoint
    ivals = _staging_intervals(
        model,
        lifetimes,
        pf.resident_offsets,
        pf.windows,
        leads=pf.window_leads,
        tile_bytes=sp.tile_bytes,
    )
    _check_interval_overlap(ivals, "PREFETCH_RACE", tag, diags)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def analyze_plan(
    graph: Graph,
    schedule: Schedule | Sequence[str],
    plan: Any,
    spill_plans: Iterable[SpillPlan] = (),
    *,
    level: str = "full",
    batch_sizes: Sequence[int] = (1,),
    target: str | None = None,
) -> AnalysisReport:
    """Statically verify one (graph, schedule, plan[, spill plans]).

    ``plan`` is an :class:`~repro.allocator.arena.AllocationPlan` or
    anything with ``offsets``/``arena_bytes``. Never raises on a bad
    plan — every violation becomes a :class:`Diagnostic`.
    """
    if level not in VERIFY_LEVELS:
        raise ValueError(
            f"unknown verify level {level!r}; pick one of {VERIFY_LEVELS}"
        )
    order = tuple(schedule.order if isinstance(schedule, Schedule) else schedule)
    target = target or graph.name
    diags: list[Diagnostic] = []
    checks: list[str] = ["schedule"]
    if level == "none":
        return AnalysisReport(target=target, diagnostics=(), checks=(), level=level)

    pos = _check_schedule(graph, order, diags)
    model = BufferModel.of(graph)
    usable = len(set(order)) == len(order) and set(order) == set(
        graph.node_names
    )
    if not usable:
        return AnalysisReport(
            target=target,
            diagnostics=tuple(diags),
            checks=tuple(checks),
            level=level,
        )
    all_pos = pos if pos is not None else {n: i for i, n in enumerate(order)}
    sched = Schedule(order, graph.name)
    lifetimes = compute_lifetimes(graph, sched, model=model)

    intra: dict[str, int] | None
    try:
        from repro.runtime.plan_executor import intra_buffer_offsets

        intra = intra_buffer_offsets(graph, model)
    except ExecutionError as exc:
        intra = None
        diags.append(
            Diagnostic(
                code="ARENA_ALIAS",
                severity=ERROR,
                message=f"buffer aliasing is inconsistent: {exc}",
                plan="arena",
            )
        )
    if intra is not None:
        checks.append("hazards")
        _check_hazards(graph, model, all_pos, intra, diags)

    checks.append("arena")
    batched = any(n > 1 for n in batch_sizes)
    offsets = dict(plan.offsets)
    _check_arena(model, lifetimes, offsets, int(plan.arena_bytes), batched, diags)

    if level == "full" and intra is not None and pos is not None:
        checks.append("reads")
        _check_read_coverage(graph, model, order, intra, diags)

    spill_plans = tuple(spill_plans)
    if spill_plans:
        checks.append("spill")
        touch = step_touches(graph, sched, model)
        if any(sp.prefetch is not None for sp in spill_plans):
            checks.append("prefetch")
        for sp in spill_plans:
            _check_spill(graph, model, lifetimes, sp, touch, diags)
            if sp.prefetch is not None:
                _check_prefetch(model, lifetimes, sp, sp.prefetch, diags)

    return AnalysisReport(
        target=target,
        diagnostics=tuple(diags),
        checks=tuple(checks),
        level=level,
    )


def analyze_model(
    model: Any,
    *,
    level: str = "full",
    batch_sizes: Sequence[int] = (1,),
) -> AnalysisReport:
    """Verify a :class:`~repro.compiler.model.CompiledModel` in memory."""
    return analyze_plan(
        model.graph,
        model.schedule,
        model.plan,
        model.spill_plans,
        level=level,
        batch_sizes=batch_sizes,
        target=model.graph.name,
    )


def _spill_plan_lenient(
    doc: dict[str, Any], diags: list[Diagnostic], index: int
) -> SpillPlan | None:
    """Rebuild a spill plan *without* its self-validation, so layout
    corruptions reach the analyzer instead of raising at parse time."""
    tag = f"spill_plans[{index}]"
    if doc.get("format") != SPILL_FORMAT:
        diags.append(
            Diagnostic(
                code="ARTIFACT_FORMAT",
                severity=ERROR,
                message=f"{tag}: unsupported spill plan format "
                f"{doc.get('format')!r} (want {SPILL_FORMAT!r})",
                plan="artifact",
            )
        )
        return None
    try:
        prefetch = None
        if doc.get("prefetch") is not None:
            prefetch = PrefetchPlan.from_doc(doc["prefetch"])
        return SpillPlan(
            capacity_bytes=int(doc["capacity_bytes"]),
            policy=str(doc["policy"]),
            resident_bytes=int(doc["resident_bytes"]),
            spill_bytes=int(doc["spill_bytes"]),
            spilled=frozenset(int(b) for b in doc["spilled"]),
            resident_offsets={
                int(b): int(off) for b, off in doc["resident_offsets"].items()
            },
            home_offsets={
                int(b): int(off) for b, off in doc["home_offsets"].items()
            },
            windows={
                int(b): tuple(
                    StageWindow(int(s), int(e), int(off)) for s, e, off in ws
                )
                for b, ws in doc["windows"].items()
            },
            prefetch=prefetch,
            tile_bytes=(
                int(doc["tile_bytes"])
                if doc.get("tile_bytes") is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        diags.append(
            Diagnostic(
                code="ARTIFACT_PARSE",
                severity=ERROR,
                message=f"{tag} is unreadable: {exc!r}",
                plan="artifact",
            )
        )
        return None


def analyze_artifact(
    doc: dict[str, Any],
    *,
    level: str = "full",
    batch_sizes: Sequence[int] = (1,),
    target: str | None = None,
) -> AnalysisReport:
    """Verify a raw ``CompiledModel`` artifact document, leniently.

    Unlike :meth:`CompiledModel.from_doc` — which raises on the first
    structural problem — this path parses defensively and reports every
    corruption it can still reach as a :class:`Diagnostic`, so a
    damaged artifact yields a full findings list rather than one
    exception. This is the path the mutation harness and the
    ``verify-plan`` CLI exercise.
    """
    from repro.compiler.model import ARTIFACT_FORMAT
    from repro.graph.serialization import graph_from_dict, graph_signature

    diags: list[Diagnostic] = []
    target = target or str(doc.get("name", "<artifact>"))
    if doc.get("format") != ARTIFACT_FORMAT:
        diags.append(
            Diagnostic(
                code="ARTIFACT_FORMAT",
                severity=ERROR,
                message=f"unsupported compiled-model format "
                f"{doc.get('format')!r} (want {ARTIFACT_FORMAT!r})",
                plan="artifact",
            )
        )
        return AnalysisReport(
            target=target, diagnostics=tuple(diags), checks=("artifact",), level=level
        )
    try:
        graph = graph_from_dict(doc["graph"])
    except (GraphError, KeyError, TypeError, ValueError) as exc:
        diags.append(
            Diagnostic(
                code="ARTIFACT_PARSE",
                severity=ERROR,
                message=f"field 'graph' is unreadable: {exc!r}",
                plan="artifact",
            )
        )
        return AnalysisReport(
            target=target, diagnostics=tuple(diags), checks=("artifact",), level=level
        )
    if graph_signature(graph) != doc.get("signature"):
        diags.append(
            Diagnostic(
                code="ARTIFACT_SIGNATURE",
                severity=ERROR,
                message="embedded signature does not match the carried "
                "graph (tampered or corrupted artifact)",
                plan="artifact",
            )
        )
    plan_doc = doc.get("plan")
    if not isinstance(plan_doc, dict):
        diags.append(
            Diagnostic(
                code="ARTIFACT_PARSE",
                severity=ERROR,
                message="field 'plan' is missing or not an object",
                plan="artifact",
            )
        )
        return AnalysisReport(
            target=target, diagnostics=tuple(diags), checks=("artifact",), level=level
        )
    try:
        order = tuple(str(n) for n in plan_doc["schedule"])
        offsets = {
            int(b["id"]): int(b["offset"]) for b in plan_doc["buffers"]
        }
        arena_bytes = int(plan_doc["arena_bytes"])
    except (KeyError, TypeError, ValueError) as exc:
        diags.append(
            Diagnostic(
                code="ARTIFACT_PARSE",
                severity=ERROR,
                message=f"field 'plan' is unreadable: {exc!r}",
                plan="artifact",
            )
        )
        return AnalysisReport(
            target=target, diagnostics=tuple(diags), checks=("artifact",), level=level
        )
    spill_plans = []
    for i, sp_doc in enumerate(doc.get("spill_plans", ())):
        sp = _spill_plan_lenient(sp_doc, diags, i)
        if sp is not None:
            spill_plans.append(sp)

    class _RawPlan:
        def __init__(self) -> None:
            self.offsets = offsets
            self.arena_bytes = arena_bytes

    report = analyze_plan(
        graph,
        order,
        _RawPlan(),
        spill_plans,
        level=level,
        batch_sizes=batch_sizes,
        target=target,
    )
    return AnalysisReport(
        target=target,
        diagnostics=tuple(diags) + report.diagnostics,
        checks=("artifact",) + report.checks,
        level=level,
    )
