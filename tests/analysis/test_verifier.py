"""Static plan verifier: clean passes, targeted invariant triggers,
report/diagnostic mechanics, and the load-time verification hook."""

import json
from dataclasses import replace

import pytest

from repro.allocator.spill import min_capacity_bytes, plan_spill
from repro.analysis import analyze_artifact, analyze_model, analyze_plan
from repro.analysis.diagnostics import ERROR, WARNING, AnalysisReport, Diagnostic
from repro.compiler.model import CompiledModel
from repro.compiler.pipeline import CompilationPipeline
from repro.exceptions import PlanVerificationError
from repro.models.suite import get_cell


@pytest.fixture(scope="module")
def compiled():
    """One suite cell compiled with an embedded spill + prefetch plan."""
    model = CompilationPipeline("greedy").compile(
        get_cell("swiftnet-a").factory()
    )
    floor = min_capacity_bytes(model.graph, model.schedule)
    cap = max(floor, model.plan.arena_bytes // 2)
    sp = plan_spill(
        model.graph, model.schedule, model.plan, cap, prefetch_lead=8
    )
    return replace(model, spill_plans=(sp,))


class _RawPlan:
    """The duck-typed plan surface ``analyze_plan`` accepts."""

    def __init__(self, offsets, arena_bytes):
        self.offsets = offsets
        self.arena_bytes = arena_bytes


def _raw(compiled, **override):
    offsets = dict(override.pop("offsets", compiled.plan.offsets))
    arena = override.pop("arena_bytes", compiled.plan.arena_bytes)
    assert not override
    return _RawPlan(offsets, arena)


class TestCleanPlans:
    def test_compiled_model_passes_full(self, compiled):
        report = analyze_model(compiled, level="full", batch_sizes=(1, 8))
        assert report.ok
        assert len(report) == 0
        for family in ("schedule", "hazards", "arena", "reads", "spill",
                       "prefetch"):
            assert family in report.checks
        assert "PASS" in report.summary()

    def test_artifact_document_passes(self, compiled):
        report = analyze_artifact(compiled.to_doc(), level="full")
        assert report.ok and report.checks[0] == "artifact"

    def test_level_none_skips_everything(self, compiled):
        report = analyze_model(compiled, level="none")
        assert report.ok and report.checks == ()

    def test_level_basic_skips_read_replay(self, compiled):
        report = analyze_model(compiled, level="basic")
        assert report.ok
        assert "reads" not in report.checks and "arena" in report.checks

    def test_unknown_level_rejected(self, compiled):
        with pytest.raises(ValueError, match="verify level"):
            analyze_model(compiled, level="paranoid")


class TestScheduleInvariants:
    def test_duplicate_blocks_byte_analysis(self, compiled):
        order = list(compiled.schedule.order)
        order[-1] = order[0]
        report = analyze_plan(compiled.graph, order, compiled.plan)
        assert not report.ok
        assert {"SCHED_DUPLICATE", "SCHED_COVERAGE"} <= report.codes()
        # an unusable order gates every byte-level family
        assert report.checks == ("schedule",)

    def test_missing_node(self, compiled):
        order = list(compiled.schedule.order)[:-1]
        report = analyze_plan(compiled.graph, order, compiled.plan)
        assert "SCHED_COVERAGE" in report.codes()

    def test_topological_violation(self, compiled):
        order = list(reversed(compiled.schedule.order))
        report = analyze_plan(compiled.graph, order, compiled.plan)
        assert "SCHED_TOPO" in report.codes()
        # a complete (if misordered) schedule still gets arena checks
        assert "arena" in report.checks


class TestArenaInvariants:
    def test_live_overlap(self, compiled):
        lts = compiled.plan.lifetimes
        pair = next(
            (a, b)
            for i, a in enumerate(lts)
            for b in lts[i + 1 :]
            if a.overlaps(b)
        )
        offsets = dict(compiled.plan.offsets)
        offsets[pair[1].buffer_id] = offsets[pair[0].buffer_id]
        report = analyze_plan(
            compiled.graph,
            compiled.schedule,
            _raw(compiled, offsets=offsets),
        )
        assert "ARENA_OVERLAP" in report.codes()
        found = report.by_code("ARENA_OVERLAP")[0]
        assert found.buffer is not None and found.byte_range is not None

    def test_out_of_bounds(self, compiled):
        offsets = dict(compiled.plan.offsets)
        offsets[0] = compiled.plan.arena_bytes
        report = analyze_plan(
            compiled.graph,
            compiled.schedule,
            _raw(compiled, offsets=offsets),
        )
        assert "ARENA_BOUNDS" in report.codes()

    def test_stale_peak(self, compiled):
        report = analyze_plan(
            compiled.graph,
            compiled.schedule,
            _raw(compiled, arena_bytes=compiled.plan.arena_bytes + 64),
        )
        assert "ARENA_PEAK" in report.codes()

    def test_batched_row_overlap(self, compiled):
        raw = _raw(compiled, arena_bytes=compiled.plan.arena_bytes - 1)
        batched = analyze_plan(
            compiled.graph, compiled.schedule, raw, batch_sizes=(1, 8)
        )
        assert "ARENA_ROW_OVERLAP" in batched.codes()
        # at batch 1 the stride never replicates: bounds still fire,
        # but the row-aliasing verdict is batch-specific
        single = analyze_plan(compiled.graph, compiled.schedule, raw)
        assert "ARENA_ROW_OVERLAP" not in single.codes()
        assert "ARENA_BOUNDS" in single.codes()

    def test_dropped_offset(self, compiled):
        offsets = dict(compiled.plan.offsets)
        offsets.pop(max(offsets))
        report = analyze_plan(
            compiled.graph,
            compiled.schedule,
            _raw(compiled, offsets=offsets),
        )
        assert "ARENA_COVERAGE" in report.codes()


class TestArtifactLeniency:
    def test_wrong_format(self):
        report = analyze_artifact({"format": "not-a-model/9"})
        assert not report.ok and "ARTIFACT_FORMAT" in report.codes()

    def test_signature_mismatch_still_analyzes(self, compiled):
        doc = compiled.to_doc()
        doc["signature"] = "0" * len(doc["signature"])
        report = analyze_artifact(doc)
        assert "ARTIFACT_SIGNATURE" in report.codes()
        # the plan checks still ran despite the tampered signature
        assert "arena" in report.checks

    def test_unreadable_plan_reports_not_raises(self, compiled):
        doc = compiled.to_doc()
        doc["plan"] = {"schedule": None}
        report = analyze_artifact(doc)
        assert not report.ok and "ARTIFACT_PARSE" in report.codes()


class TestDiagnosticMechanics:
    def test_format_names_the_site(self):
        d = Diagnostic(
            code="ARENA_OVERLAP",
            severity=ERROR,
            message="boom",
            step=3,
            node="n1",
            buffer=7,
            byte_range=(0, 64),
        )
        s = d.format()
        assert "ARENA_OVERLAP" in s and "step 3" in s
        assert "'n1'" in s and "buffer 7" in s and "[0, 64)" in s

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="X", severity="fatal", message="m")

    def test_report_partitions_and_serializes(self):
        diags = (
            Diagnostic(code="A", severity=ERROR, message="e"),
            Diagnostic(code="B", severity=WARNING, message="w"),
        )
        report = AnalysisReport(
            target="t", diagnostics=diags, checks=("arena",), level="full"
        )
        assert not report.ok
        assert [d.code for d in report.errors] == ["A"]
        assert [d.code for d in report.warnings] == ["B"]
        doc = json.loads(json.dumps(report.to_doc()))
        assert doc["ok"] is False and len(doc["diagnostics"]) == 2
        assert "FAIL" in report.summary()

    def test_warnings_alone_still_pass(self):
        report = AnalysisReport(
            target="t",
            diagnostics=(Diagnostic(code="B", severity=WARNING, message="w"),),
            checks=("arena",),
            level="full",
        )
        assert report.ok and "warning" in report.summary()


class TestTiledSpillInvariants:
    """Tile-streamed plans: clean passes below the whole-buffer floor,
    and the tile-specific invariants trigger on corruption."""

    @pytest.fixture(scope="class")
    def tiled(self, compiled):
        """The compiled model with a tiled plan embedded at a capacity
        whole-buffer staging cannot plan."""
        floor = min_capacity_bytes(compiled.graph, compiled.schedule)
        tile_floor = min_capacity_bytes(
            compiled.graph, compiled.schedule, tile_bytes=8192
        )
        cap = max(tile_floor, min(floor - 1, tile_floor * 2))
        assert cap < floor, "fixture cell must have tile headroom"
        sp = plan_spill(
            compiled.graph,
            compiled.schedule,
            compiled.plan,
            cap,
            prefetch_lead=8,
            tile_bytes=8192,
        )
        return replace(compiled, spill_plans=(sp,)), sp

    def test_clean_tiled_plan_passes_full(self, tiled):
        model, sp = tiled
        assert sp.tile_bytes == 8192
        report = analyze_model(model, level="full", batch_sizes=(1, 8))
        assert report.ok and len(report) == 0, report.summary()

    def test_tiled_artifact_round_trip_passes(self, tiled):
        model, _ = tiled
        doc = json.loads(json.dumps(model.to_doc()))
        report = analyze_artifact(doc, level="full")
        assert report.ok and len(report) == 0, report.summary()

    def test_nonpositive_tile_flags_geometry(self, tiled):
        model, sp = tiled
        # bypass from_doc validation: corrupt the in-memory plan
        bad = replace(sp, tile_bytes=-8)
        report = analyze_plan(
            model.graph, model.schedule, model.plan, (bad,), level="full"
        )
        assert not report.ok
        assert "SPILL_TILE_GEOMETRY" in report.codes()

    def test_whole_buffer_capacity_now_below_tiled_floor(self, tiled):
        """Stripping tile_bytes from a below-floor tiled plan leaves a
        capacity no whole-buffer configuration can execute."""
        model, sp = tiled
        bad = replace(sp, tile_bytes=None)
        report = analyze_plan(
            model.graph, model.schedule, model.plan, (bad,), level="full"
        )
        assert not report.ok
        assert "SPILL_FLOOR" in report.codes()

    def test_shrunk_tile_breaks_slot_layout(self, tiled):
        """Window offsets are laid out for min(size, tile) slots; a
        different tile size must be caught, not silently reinterpreted."""
        model, sp = tiled
        bad = replace(sp, tile_bytes=sp.tile_bytes * 64)
        report = analyze_plan(
            model.graph, model.schedule, model.plan, (bad,), level="full"
        )
        assert not report.ok, "64x tile slots must not fit the same layout"


class TestLoadVerification:
    def test_corrupt_artifact_fails_load(self, compiled, tmp_path):
        doc = compiled.to_doc()
        doc["plan"]["arena_bytes"] = int(doc["plan"]["arena_bytes"]) + 4096
        path = tmp_path / "m.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(PlanVerificationError) as exc:
            CompiledModel.load(path)
        assert "ARENA_PEAK" in exc.value.report.codes()
        assert "ARENA_PEAK" in str(exc.value)

    def test_verify_none_skips_the_analyzer(self, compiled, tmp_path):
        doc = compiled.to_doc()
        doc["plan"]["arena_bytes"] = int(doc["plan"]["arena_bytes"]) + 4096
        path = tmp_path / "m.json"
        path.write_text(json.dumps(doc))
        model = CompiledModel.load(path, verify="none")
        assert model.plan.arena_bytes == compiled.plan.arena_bytes + 4096

    def test_clean_artifact_loads_at_full(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "m.json")
        model = CompiledModel.load(path, verify="full")
        assert model.signature == compiled.signature

    def test_unknown_verify_level_rejected(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "m.json")
        with pytest.raises(ValueError, match="verify level"):
            CompiledModel.load(path, verify="paranoid")
