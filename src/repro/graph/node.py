"""Graph nodes: one operator application producing one output tensor.

The IR follows the paper's model (Section 3.1): every node ``u`` produces
exactly one activation tensor whose size is ``prod(u.shape)`` elements.
Multi-output ops (e.g. ``split``) are modelled as one node per output
slice, which keeps the memory bookkeeping exact and the DP state simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graph.tensor import TensorSpec

__all__ = ["Node", "MemorySemantics"]


@dataclass(frozen=True, slots=True)
class MemorySemantics:
    """How a node's output interacts with buffer memory.

    The default is a fresh buffer per output. The identity-graph-rewriting
    rules (Section 3.3) introduce two aliasing forms:

    * ``inplace_of = i`` — the output reuses input ``i``'s buffer
      (partial-conv accumulation: ``acc += w_i * x_i``).
    * ``view = True`` — the output is a zero-copy view assembled from all
      inputs (the concat that follows kernel-wise partitioned depthwise
      convolutions writes each partial result directly into the final
      buffer, giving the paper's ``max(size(x_i)) + size(y)`` cost).
    """

    inplace_of: int | None = None
    view: bool = False

    def __post_init__(self) -> None:
        if self.inplace_of is not None and self.view:
            raise ValueError("a node cannot be both in-place and a view")

    @property
    def aliases(self) -> bool:
        return self.view or self.inplace_of is not None


@dataclass(slots=True)
class Node:
    """One operator application.

    Attributes
    ----------
    name:
        Unique node identifier within its graph.
    op:
        Operator type name, resolved through :mod:`repro.ops` for shape
        inference, MAC counting and execution.
    inputs:
        Names of producer nodes, in operator-argument order.
    output:
        The :class:`TensorSpec` of the produced activation.
    attrs:
        Operator attributes (kernel size, stride, channel slices, ...).
    memory:
        Buffer-aliasing semantics used by the memory model.
    """

    name: str
    op: str
    inputs: tuple[str, ...]
    output: TensorSpec
    attrs: dict[str, Any] = field(default_factory=dict)
    memory: MemorySemantics = field(default_factory=MemorySemantics)

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        if self.memory.inplace_of is not None and not (
            0 <= self.memory.inplace_of < len(self.inputs)
        ):
            raise ValueError(
                f"node {self.name!r}: inplace_of={self.memory.inplace_of} "
                f"out of range for {len(self.inputs)} inputs"
            )

    @property
    def output_bytes(self) -> int:
        """Bytes of the produced activation tensor."""
        return self.output.bytes

    def replace(self, **changes: Any) -> "Node":
        """A shallow copy with some fields replaced (attrs are copied)."""
        merged = {
            "name": self.name,
            "op": self.op,
            "inputs": self.inputs,
            "output": self.output,
            "attrs": dict(self.attrs),
            "memory": self.memory,
        }
        merged.update(changes)
        return Node(**merged)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(self.inputs)
        return f"{self.name} = {self.op}({args}) -> {self.output}"
