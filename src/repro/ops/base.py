"""Operator registry: shape inference and MAC/parameter accounting.

Each operator type registers an :class:`OpSchema`. The registry is the
single source of truth used by

* :class:`repro.graph.builder.GraphBuilder` (shape inference at build time),
* Table 1 statistics (MAC / weight counting),
* the NumPy executor (which keeps its own kernel table in
  :mod:`repro.runtime.kernels`, keyed by the same op names).

Schemas are deliberately metadata-only — no tensor math here — so the
scheduler stack never imports NumPy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ShapeError, UnknownOpError
from repro.graph.tensor import TensorSpec

__all__ = [
    "OpSchema",
    "register_op",
    "get_op",
    "has_op",
    "registered_ops",
    "infer_shape",
    "op_macs",
    "op_weights",
    "conv_output_hw",
    "normalize_pair",
]

ShapeFn = Callable[[list[TensorSpec], dict[str, Any]], TensorSpec]
CountFn = Callable[[list[TensorSpec], TensorSpec, dict[str, Any]], int]


def _zero(_inputs: list[TensorSpec], _out: TensorSpec, _attrs: dict[str, Any]) -> int:
    return 0


@dataclass(frozen=True)
class OpSchema:
    """Static description of one operator type."""

    name: str
    infer_shape: ShapeFn
    macs: CountFn = field(default=_zero)
    weights: CountFn = field(default=_zero)
    #: minimum number of inputs (None = exactly ``max_inputs``)
    min_inputs: int = 1
    #: maximum number of inputs (None = unbounded, e.g. concat)
    max_inputs: int | None = 1


_REGISTRY: dict[str, OpSchema] = {}


def register_op(schema: OpSchema) -> OpSchema:
    """Register ``schema``; re-registration with identical name replaces
    (useful for tests extending the op set)."""
    _REGISTRY[schema.name] = schema
    return schema


def has_op(name: str) -> bool:
    return name in _REGISTRY


def get_op(name: str) -> OpSchema:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownOpError(f"operator {name!r} is not registered") from None


def registered_ops() -> list[str]:
    """All registered op names, sorted."""
    return sorted(_REGISTRY)


def _check_arity(schema: OpSchema, n: int) -> None:
    lo = schema.min_inputs
    hi = schema.max_inputs
    if n < lo or (hi is not None and n > hi):
        bound = f"exactly {lo}" if hi == lo else f"between {lo} and {hi or 'inf'}"
        raise ShapeError(f"op {schema.name!r} expects {bound} inputs, got {n}")


def infer_shape(
    op: str, inputs: list[TensorSpec], attrs: dict[str, Any]
) -> TensorSpec:
    """Infer the output spec of ``op`` applied to ``inputs``."""
    schema = get_op(op)
    _check_arity(schema, len(inputs))
    return schema.infer_shape(inputs, attrs)


def op_macs(op: str, inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    """Multiply-accumulate count of one node."""
    return get_op(op).macs(inputs, out, attrs)


def op_weights(op: str, inputs: list[TensorSpec], out: TensorSpec, attrs: dict) -> int:
    """Learnable parameter count of one node."""
    return get_op(op).weights(inputs, out, attrs)


# ----------------------------------------------------------------------
# shared shape helpers
# ----------------------------------------------------------------------
def normalize_pair(value: int | tuple[int, int], what: str) -> tuple[int, int]:
    """Accept ``3`` or ``(3, 3)`` style kernel/stride attributes."""
    if isinstance(value, int):
        if value <= 0:
            raise ShapeError(f"{what} must be positive, got {value}")
        return (value, value)
    pair = tuple(value)
    if len(pair) != 2 or any((not isinstance(v, int)) or v <= 0 for v in pair):
        raise ShapeError(f"{what} must be an int or a pair of ints, got {value!r}")
    return pair  # type: ignore[return-value]


def conv_output_hw(
    h: int,
    w: int,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: str | int | tuple[int, int],
) -> tuple[int, int]:
    """Spatial output size under ``same``/``valid``/explicit padding.

    ``same`` follows the TensorFlow convention ``ceil(in / stride)``;
    ``valid`` is ``floor((in - k) / stride) + 1``.
    """
    kh, kw = kernel
    sh, sw = stride
    if padding == "same":
        oh = -(-h // sh)
        ow = -(-w // sw)
    elif padding == "valid":
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
    else:
        ph, pw = normalize_pair(padding, "padding") if not isinstance(
            padding, int
        ) else (padding, padding)
        oh = (h + 2 * ph - kh) // sh + 1
        ow = (w + 2 * pw - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"convolution output collapsed to {oh}x{ow} "
            f"(input {h}x{w}, kernel {kernel}, stride {stride}, padding {padding!r})"
        )
    return oh, ow


def require_chw(spec: TensorSpec, op: str) -> tuple[int, int, int]:
    """Unpack a (C, H, W) feature map or raise a helpful error."""
    if spec.rank != 3:
        raise ShapeError(f"op {op!r} expects (C, H, W) input, got {spec.shape}")
    return spec.shape  # type: ignore[return-value]
