"""Arena-backed plan executor: run a graph the way a device would.

The reference :class:`~repro.runtime.executor.Executor` evaluates a
graph in topological order with a dict of arrays — correct, but blind
to everything the compiler worked out. :class:`PlanExecutor` instead
executes under a compiled plan:

* kernels run in **schedule order** (the memory-aware order found by
  the scheduler, not the graph's insertion order);
* every activation lives at its planned byte offset inside **one
  preallocated arena** (the :class:`~repro.allocator.arena.AllocationPlan`
  produced by the TFLite-style offset allocators);
* buffer aliasing is honoured physically: an in-place accumulation
  writes over its target's bytes, and a view concat's operands are
  produced directly into their slice of the shared output buffer
  (:class:`~repro.graph.node.MemorySemantics`).

The executor tracks the arena's measured high-water mark while it runs
and raises if it ever exceeds ``AllocationPlan.arena_bytes`` — the
plan's promise is checked on every execution, not assumed. Outputs are
bitwise-identical to the reference executor (same kernels, same
parameters, same float64 compute dtype); the parity suite in
``tests/runtime/test_plan_executor.py`` asserts exactly that across the
whole benchmark suite.

The arena is allocated **once per executor** and reused across ``run()``
calls — that is the paper's deployment model (a fixed, preallocated
footprint serving request after request) and what makes the serving
layer in :mod:`repro.serving` honest. Correctness over stale bytes is
structural: every byte a kernel reads was written earlier in the same
run (inputs are fed, intermediates computed), so no scrub is needed for
parity — the suite proves bitwise-identical outputs across back-to-back
runs over a dirty arena. An explicit ``scrub`` policy is still
available for callers who want defence in depth (``"zero"``) or the
old fresh-allocation behaviour for baselines (``"fresh"``).

Kernels write **directly into their arena site** when they can
(:data:`~repro.runtime.kernels.OUT_KERNELS`: elementwise chains,
concat/flatten/slice copies), eliminating the temporary-plus-copy of
every produced tensor; ops without a destination-write form (convs,
pools, dense) keep the copy fallback. Direct writes are planned at
construction and only enabled where the destination range is disjoint
from — or exactly equal to, for positionwise ops — every input's range,
so aliased layouts can never corrupt an operand mid-kernel.

Batching
--------
``batch_size=N`` makes the executor **batch-native**: the arena becomes
``N`` per-sample rows (a strided ``(N, arena_elems)`` layout), so every
planned byte offset, lifetime and hazard verdict from the per-sample
compilation is reused unchanged — row ``b`` of the batched arena is
exactly the single-sample arena of sample ``b``, and nothing is
re-scheduled. :meth:`run_batch` executes up to ``N`` stacked samples
per step through the batched kernel tables
(:data:`~repro.runtime.kernels.BATCH_KERNELS` /
:data:`~repro.runtime.kernels.BATCH_OUT_KERNELS`), paying NumPy's
per-call dispatch once per node per batch instead of once per node per
sample. A partial batch ``n < N`` runs on the first ``n`` arena rows at
its true size — no padding, no wasted compute. Per-sample results are
bitwise those of :meth:`run` (and therefore of the reference executor);
the batched parity suite asserts that across the benchmark suite.
:meth:`run` itself always executes single-sample on row 0 with the
unbatched kernels, whatever the construction batch size.

Tiered arenas & spilling
------------------------
``spill=SpillPlan`` turns the single arena into a **two-region**
layout: an on-chip *resident* region bounded by the plan's capacity,
plus an off-chip *spill* region holding the home bytes of spilled
buffers (:class:`~repro.allocator.spill.SpillPlan`). The flat step
table gains explicit **fetch** steps (home → staging slot, at every
staging-window entry after the buffer's first write) and **writeback**
steps (staging slot → home, at dirty window exits whose data is needed
again), so off-chip traffic is *executed*, not merely estimated — and
counted per run in :class:`~repro.memsim.hierarchy.TrafficReport`-
compatible units (:meth:`PlanExecutor.traffic_report`). Because fetch
and writeback copy bytes verbatim, outputs stay **bitwise identical**
to the resident execution (and therefore to the reference executor)
under every capacity, solo and batched; batched rows each stage and
move their own bytes, so a batch-``N`` spilled run pays ``N x`` the
per-sample traffic.

Offsets inside a shared buffer
------------------------------
The :class:`~repro.scheduler.memory.BufferModel` says *which* tensors
share a buffer; executing them also needs *where inside it* each tensor
sits. That placement is solved once at construction: aliasing edges
(``intra[u] == intra[target]`` for in-place nodes, ``intra[x_j] ==
intra[view] + sum(bytes(x_0..x_{j-1}))`` for view operands) are
propagated from each buffer's deepest consumer, then bounds-checked
against the buffer extent. Inconsistent aliasing is rejected instead of
silently corrupting memory.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.allocator.arena import AllocationPlan
from repro.allocator.spill import SpillPlan, StageWindow, step_touches
from repro.exceptions import ExecutionError
from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.memsim.hierarchy import OffchipLink, TrafficReport
from repro.memsim.trace import tile_spans
from repro.runtime.executor import Params, init_params
from repro.runtime.kernels import (
    BATCH_KERNELS,
    BATCH_OUT_KERNELS,
    KERNELS,
    OUT_KERNELS,
)
from repro.scheduler.memory import BufferModel
from repro.scheduler.schedule import Schedule

__all__ = [
    "PlanExecutor",
    "PlanExecutionStats",
    "SCRUB_POLICIES",
    "intra_buffer_offsets",
]

#: the reference executor computes in float64; the arena does the same
#: so the two produce bitwise-identical outputs
_EXEC_DTYPE = np.dtype(np.float64)


def _view_operand_offsets(graph: Graph, node: Node) -> list[int]:
    """Byte offset of each input occurrence inside a view node's output.

    View concats stack their operands along axis 0 of a C-contiguous
    tensor, so operand *j* starts at the summed bytes of operands
    ``0..j-1`` (aliased or not — copied operands still occupy their
    slice of the layout).
    """
    offsets: list[int] = []
    cursor = 0
    for src in node.inputs:
        offsets.append(cursor)
        cursor += graph.node(src).output.bytes
    return offsets


def intra_buffer_offsets(graph: Graph, model: BufferModel) -> dict[str, int]:
    """Byte offset of every node's tensor *within* its shared buffer.

    Plain (non-aliasing, non-aliased) tensors sit at offset 0 of their
    own buffer. Aliasing constraints are propagated from each buffer's
    deepest consumer backwards; a node constrained to two different
    offsets (a tensor cannot be a slice of two places at once) raises
    :class:`ExecutionError`, as does any placement escaping the buffer.
    """
    idx = model.index
    n = idx.n
    # adjacency: intra[a] == intra[b] + delta  <=>  (b, a, -delta)
    edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]

    def constrain(a: int, b: int, delta: int) -> None:
        edges[a].append((b, delta))
        edges[b].append((a, -delta))

    for i, name in enumerate(idx.order):
        node = graph.node(name)
        if node.memory.inplace_of is not None:
            constrain(i, idx.index[node.inputs[node.memory.inplace_of]], 0)
        elif node.memory.view:
            aliased = node.attrs.get("view_inputs")
            indices = range(len(node.inputs)) if aliased is None else aliased
            rel = _view_operand_offsets(graph, node)
            for j in indices:
                # intra[input_j] == intra[view] + rel[j]
                constrain(idx.index[node.inputs[j]], i, rel[j])

    intra: list[int | None] = [None] * n
    for root in range(n - 1, -1, -1):  # deepest consumers first
        if intra[root] is not None:
            continue
        intra[root] = 0
        stack = [root]
        while stack:
            a = stack.pop()
            base = intra[a]
            assert base is not None
            for b, delta in edges[a]:
                want = base - delta
                if intra[b] is None:
                    intra[b] = want
                    stack.append(b)
                elif intra[b] != want:
                    raise ExecutionError(
                        f"inconsistent buffer aliasing: {idx.order[b]!r} is "
                        f"placed at byte {intra[b]} and {want} of the same "
                        "buffer"
                    )

    # normalise each buffer to start at 0 and check every member fits
    from repro.graph.analysis import bits

    for b in range(model.n_buffers):
        members = list(bits(model.buf_members[b]))
        lo = min(intra[i] for i in members)  # type: ignore[type-var]
        for i in members:
            intra[i] -= lo  # type: ignore[operator]
            if intra[i] + idx.out_bytes[i] > model.buf_size[b]:  # type: ignore[operator]
                raise ExecutionError(
                    f"tensor {idx.order[i]!r} at intra-buffer byte "
                    f"{intra[i]} escapes its {model.buf_size[b]}-byte buffer"
                )
    return {idx.order[i]: int(intra[i]) for i in range(n)}  # type: ignore[arg-type]


@dataclass(frozen=True)
class PlanExecutionStats:
    """Arena accounting measured during one :meth:`PlanExecutor.run`."""

    steps: int
    #: the plan's promised capacity (per sample — one arena row)
    arena_bytes: int
    #: highest byte extent any live buffer actually reached (per sample)
    measured_peak_bytes: int
    #: whether this run reused the bytes of a previous run's arena
    arena_reused: bool = False
    #: kernels that wrote straight into their arena site
    direct_writes: int = 0
    #: kernels that fell back to temporary-then-copy
    copy_writes: int = 0
    #: samples executed by this run (1 for :meth:`PlanExecutor.run`)
    batch: int = 1
    #: on-chip capacity the run was held to (None: no spill plan; the
    #: plan's own arena_bytes is the promise)
    capacity_bytes: int | None = None
    #: buffers homed off-chip by the spill plan
    spilled_buffers: int = 0
    #: off-chip traffic executed by this run (all samples), in the
    #: units of :class:`~repro.memsim.hierarchy.TrafficReport`
    spill_fetches: int = 0
    spill_writebacks: int = 0
    spill_bytes_in: int = 0
    spill_bytes_out: int = 0
    #: buffer touches replayed (reads + writes), for traffic reports
    spill_accesses: int = 0
    #: transfer wall-clock the compute stream waited on: inline
    #: fetch/writeback copies (plus any modeled link time) and barrier
    #: waits on in-flight prefetch jobs
    spill_stall_s: float = 0.0
    #: transfer wall-clock the background engine overlapped behind
    #: compute (0 for inline execution)
    spill_hidden_s: float = 0.0
    #: max prefetch lead (schedule steps) the run executed with; 0
    #: means every transfer ran inline
    prefetch_lead: int = 0
    #: transfer granularity spilled buffers streamed at (None =
    #: whole-buffer staging)
    tile_bytes: int | None = None

    @property
    def spill_bytes_total(self) -> int:
        """Total off-chip bytes moved by this run (the Fig 11 quantity)."""
        return self.spill_bytes_in + self.spill_bytes_out

    @property
    def utilization(self) -> float:
        """Measured peak as a fraction of the planned arena."""
        return (
            self.measured_peak_bytes / self.arena_bytes if self.arena_bytes else 1.0
        )


#: step kinds inside a compiled :class:`_RunPlan`
_STEP_INPUT, _STEP_DIRECT, _STEP_COPY = 0, 1, 2
#: spill data movement: fetch = home -> staging slot, writeback = back
_STEP_FETCH, _STEP_WRITEBACK = 3, 4
#: tile staging hop between a tile slot and a spilled buffer's scratch
#: backing store (on-chip move: copy-timed, never link-timed)
_STEP_STAGE = 5
#: overlapped data movement: hand a copy (or a multi-hop tile job) to
#: the transfer engine / wait until engine job #attrs (1-based) is done
_STEP_ENQUEUE, _STEP_SYNC = 6, 7


def _range_add(ranges: list[tuple[int, int]], lo: int, hi: int) -> None:
    """Merge byte interval ``[lo, hi)`` into a sorted disjoint list."""
    if hi <= lo:
        return
    ranges.append((lo, hi))
    ranges.sort()
    merged = [ranges[0]]
    for r_lo, r_hi in ranges[1:]:
        if r_lo <= merged[-1][1]:
            if r_hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], r_hi)
        else:
            merged.append((r_lo, r_hi))
    ranges[:] = merged


def _tile_pieces(
    touch_ranges: list[tuple[int, int]],
    clip_ranges: list[tuple[int, int]],
    spans: tuple[tuple[int, int], ...],
) -> list[tuple[int, int, int]]:
    """Per-tile transfer pieces for one staging window.

    A tile is moved iff it intersects ``touch_ranges`` (the bytes the
    window's kernels actually bind — the memsim rule: traffic happens
    at the granularity of touched tiles), and only the bytes inside
    ``clip_ranges`` move (fetch clips to already-homed bytes, writeback
    to bytes some kernel produced — the rest of the tile has no defined
    value yet). Returns ``(lo, hi, slot_lo)`` pieces in buffer byte
    coordinates; ``slot_lo`` is the piece's offset inside the (single,
    tile-sized) staging slot its tile streams through."""
    out: list[tuple[int, int, int]] = []
    for t_lo, t_sz in spans:
        t_hi = t_lo + t_sz
        if not any(lo < t_hi and t_lo < hi for lo, hi in touch_ranges):
            continue
        for lo, hi in clip_ranges:
            p_lo, p_hi = max(lo, t_lo), min(hi, t_hi)
            if p_lo < p_hi:
                out.append((p_lo, p_hi, p_lo - t_lo))
    return out


class _TransferEngine:
    """One background "DMA engine": a daemon thread draining a FIFO of
    copies.

    A single queue gives every transfer a total order, which makes all
    engine-vs-engine hazards (writeback before the next fetch of the
    same home; slot handoff between ping/pong windows; tile-slot reuse
    between consecutive tile pieces) safe by construction — the compute
    thread only needs explicit waits where a kernel consumes bytes
    still in flight. A job is a sequence of **hops** ``(dst, src,
    linked)`` executed in order: a plain whole-buffer copy is one
    linked hop, a tile piece is two (off-chip <-> tile slot, link-timed;
    tile slot <-> scratch, a plain on-chip move). NumPy copies release
    the GIL for the bulk of the move (and a modeled
    :class:`~repro.memsim.hierarchy.OffchipLink` sleeps, which also
    releases it), so engine transfers genuinely overlap compute."""

    def __init__(
        self, link: OffchipLink | None = None, *, batch_sleeps: bool = False
    ) -> None:
        self.link = link
        #: pay modeled link time in >= quantum sleeps (tile streaming:
        #: many tiny jobs whose individual sleeps would drown in
        #: ``time.sleep`` syscall overhead); whole-buffer staging keeps
        #: one sleep per job
        self.batch_sleeps = batch_sleeps
        #: monotone job counters: job k is the k-th submitted copy
        self.enqueued = 0
        self.completed = 0
        #: wall-clock the engine spent moving bytes
        self.busy_s = 0.0
        self._q: deque[tuple[tuple[np.ndarray, np.ndarray, bool], ...]] = (
            deque()
        )
        #: threads currently blocked on a completion — sleep batching
        #: only defers completions nobody is observing
        self._waiters = 0
        self._cond = threading.Condition()
        self._closed = False
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._drain, daemon=True, name="repro-offchip-dma"
        )
        self._thread.start()

    def submit(self, dst: np.ndarray, src: np.ndarray) -> int:
        """Queue one copy; returns its 1-based job number."""
        return self.submit_hops(((dst, src, True),))

    def submit_hops(
        self, hops: tuple[tuple[np.ndarray, np.ndarray, bool], ...]
    ) -> int:
        """Queue one multi-hop job (hops run in order); returns its
        1-based job number."""
        with self._cond:
            if self._closed:
                raise ExecutionError(
                    "transfer engine is closed (executor was released)"
                )
            if self._failure is not None:
                raise ExecutionError(
                    f"transfer engine failed: {self._failure!r}"
                )
            self._q.append(hops)
            self.enqueued += 1
            self._cond.notify_all()
            return self.enqueued

    def wait(self, job: int) -> float:
        """Block until job number ``job`` has completed; returns the
        wall-clock seconds spent waiting (the compute stall)."""
        t0 = time.perf_counter()
        with self._cond:
            self._waiters += 1
            try:
                while self.completed < job and self._failure is None:
                    self._cond.wait()
            finally:
                self._waiters -= 1
            if self.completed < job:
                raise ExecutionError(
                    f"transfer engine failed: {self._failure!r}"
                )
        return time.perf_counter() - t0

    def quiesce(self) -> None:
        """Wait until the queue is empty (no error propagation) — used
        to leave no transfer in flight after a failed run."""
        with self._cond:
            self._waiters += 1
            try:
                while (
                    self.completed < self.enqueued
                    and self._failure is None
                ):
                    self._cond.wait()
            finally:
                self._waiters -= 1

    def close(self) -> None:
        """Idempotent shutdown: the drain thread finishes queued jobs
        and exits; further submits are rejected."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    #: modeled link time is paid in sleeps no shorter than this: a
    #: host ``time.sleep`` costs ~100us of scheduler overhead however
    #: short, which would bill a tile-granularity run 5x its modeled
    #: link time. Jobs whose sleep is deferred stay *incomplete* until
    #: the accumulated debt is slept off, so stall accounting can only
    #: round up (by < one quantum per wait), never undercount — and
    #: batching only ever defers completions nobody is observing: the
    #: moment a thread blocks in wait()/quiesce(), the debt is flushed
    #: after every job, restoring per-job completion granularity.
    _SLEEP_QUANTUM_S = 2.5e-4

    def _drain(self) -> None:
        debt = 0.0  # modeled link seconds owed but not yet slept
        batch = 0  # jobs copied but not yet marked complete
        while True:
            with self._cond:
                while not self._q and not self._closed and not batch:
                    self._cond.wait()
                if not self._q and not batch:
                    return  # closed and drained
                hops = self._q.popleft() if self._q else None
                queue_empty = not self._q
            if hops is not None:
                t0 = time.perf_counter()
                try:
                    for dst, src, linked in hops:
                        dst[...] = src
                        if linked and self.link is not None:
                            debt += self.link.transfer_s(dst.nbytes)
                except BaseException as exc:  # propagate to the next wait
                    with self._cond:
                        self._failure = exc
                        self._cond.notify_all()
                    return
                batch += 1
                with self._cond:
                    self.busy_s += time.perf_counter() - t0
                    waited_on = self._waiters > 0
            else:
                with self._cond:
                    waited_on = self._waiters > 0
            if batch and (
                queue_empty
                or waited_on
                or self.link is None
                or not self.batch_sleeps
                or debt >= self._SLEEP_QUANTUM_S
            ):
                if debt > 0.0:
                    time.sleep(debt)
                with self._cond:
                    self.busy_s += debt
                    self.completed += batch
                    self._cond.notify_all()
                debt = 0.0
                batch = 0


@dataclass(frozen=True)
class _RunPlan:
    """One execution order compiled to a flat step table.

    ``steps`` rows are ``(kind, name, site, fn, args, attrs, params,
    shape)`` with every field resolved against the persistent arena —
    the run loop touches no graph or dict lookups. The liveness replay
    is data-independent, so the measured peak (and any overflow) is a
    property of the plan, computed once.
    """

    steps: tuple[tuple, ...]
    measured_peak_bytes: int
    overflow_at: str | None
    direct_writes: int
    copy_writes: int
    #: per-sample off-chip traffic baked into the step table (a batch
    #: of n rows moves n x these)
    spill_fetches: int = 0
    spill_writebacks: int = 0
    spill_bytes_in: int = 0
    spill_bytes_out: int = 0
    spill_accesses: int = 0
    #: transfer-engine jobs this plan submits per run (prefetch mode)
    total_jobs: int = 0


#: arena scrub policies between runs (see :class:`PlanExecutor`)
SCRUB_POLICIES = ("never", "zero", "fresh")

#: compiled pruned-output plans kept per executor (the full-schedule
#: plans are pinned separately); long-lived pooled executors must not
#: grow without bound under request traffic with varied output subsets
_RUN_PLAN_CACHE_LIMIT = 32

#: plan-cache batch key for the unbatched single-sample path (row 0,
#: unbatched kernel tables) — distinct from a batched run at n == 1,
#: which binds (1, ...)-shaped views and the batched tables
_UNBATCHED = 0


class PlanExecutor:
    """Execute a graph under a schedule and arena plan.

    >>> px = PlanExecutor(model.graph, model.schedule, model.plan)
    >>> outputs = px.run(random_feeds(model.graph))
    >>> px.last_stats.measured_peak_bytes <= model.plan.arena_bytes
    True

    Parameters mirror the reference executor: ``params`` defaults to the
    deterministic per-node random initialisation, so the same
    ``(graph, seed)`` pair yields bitwise-identical outputs under both
    executors.

    The arena is owned by the executor and reused across runs. ``scrub``
    picks what happens to its stale bytes between runs:

    ``"never"`` (default)
        reuse the dirty arena as-is. Safe by construction — every byte a
        run reads, it wrote first — and the fast path for serving.
    ``"zero"``
        zero-fill the existing arena before each run (defence in depth,
        e.g. against cross-request data exposure in multi-tenant use).
    ``"fresh"``
        allocate a brand-new zeroed arena per run — the historical
        per-request behaviour, kept as the benchmark baseline.

    ``batch_size=N`` provisions ``N`` arena rows with the identical
    per-sample layout, enabling :meth:`run_batch` over up to ``N``
    stacked samples (see the module docstring).

    ``spill`` executes under a two-region tiered arena: spilled
    buffers live off-chip and are staged on-chip per access window,
    with fetch/writeback steps in the step table and measured traffic
    in :attr:`last_stats` / :meth:`traffic_report` (see the module
    docstring). Outputs are bitwise those of the unspilled executor.

    ``prefetch`` (default on) uses the spill plan's ping/pong
    :class:`~repro.allocator.spill.PrefetchPlan` when it carries one:
    fetches are issued early and writebacks drained late on a
    background transfer engine, so transfer time hides behind compute
    and only surfaces as stall when a kernel needs bytes still in
    flight. ``link`` attaches a modeled
    :class:`~repro.memsim.hierarchy.OffchipLink` so every transfer
    (inline or overlapped) costs the modeled wall-clock instead of a
    host memcpy. Executors with an active engine own a daemon thread;
    :meth:`close` releases it (pools do this when discarding).
    """

    def __init__(
        self,
        graph: Graph,
        schedule: Schedule,
        plan: AllocationPlan,
        params: Params | None = None,
        seed: int = 0,
        model: BufferModel | None = None,
        scrub: str = "never",
        batch_size: int = 1,
        spill: SpillPlan | None = None,
        prefetch: bool = True,
        link: OffchipLink | None = None,
    ) -> None:
        schedule.validate(graph)
        if scrub not in SCRUB_POLICIES:
            raise ExecutionError(
                f"unknown scrub policy {scrub!r}; pick one of {SCRUB_POLICIES}"
            )
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ExecutionError(
                f"batch_size must be a positive integer, got {batch_size!r}"
            )
        self.graph = graph
        self.schedule = schedule
        self.plan = plan
        self.params = params if params is not None else init_params(graph, seed)
        self.model = model or BufferModel.of(graph)
        self.scrub = scrub
        self.batch_size = batch_size
        self.runs = 0
        self.last_stats: PlanExecutionStats | None = None

        idx = self.model.index
        if set(plan.offsets) != set(range(self.model.n_buffers)):
            raise ExecutionError(
                "allocation plan does not cover the graph's buffers "
                f"({len(plan.offsets)} offsets for {self.model.n_buffers} buffers)"
            )
        for lt in plan.lifetimes:
            if self.model.buf_size[lt.buffer_id] != lt.size:
                raise ExecutionError(
                    f"allocation plan disagrees with the graph: buffer "
                    f"{lt.buffer_id} is {lt.size} bytes in the plan, "
                    f"{self.model.buf_size[lt.buffer_id]} in the graph"
                )

        itemsizes = {graph.node(name).output.dtype.itemsize for name in idx.order}
        if len(itemsizes) != 1:
            raise ExecutionError(
                "PlanExecutor requires a uniform tensor itemsize "
                f"(found {sorted(itemsizes)}); use the reference Executor "
                "for mixed-dtype graphs"
            )
        self._itemsize = itemsizes.pop()

        # tiered-arena layout: spilled buffers are homed in the spill
        # region and staged on-chip per window, everything else keeps a
        # fixed resident-region slot for its whole lifetime
        self.spill = spill
        self._spilled: frozenset[int] = (
            spill.spilled if spill is not None else frozenset()
        )
        if link is not None and not isinstance(link, OffchipLink):
            raise ExecutionError(
                f"link must be an OffchipLink or None, got {type(link).__name__}"
            )
        self._link = link
        if spill is not None:
            spill.validate()
            resident = set(range(self.model.n_buffers)) - set(self._spilled)
            if set(spill.resident_offsets) != resident:
                raise ExecutionError(
                    "spill plan does not cover this graph's buffers: "
                    f"{len(spill.resident_offsets)} resident offsets for "
                    f"{len(resident)} resident buffers"
                )
        # active staging layout: the ping/pong prefetch layout when the
        # plan carries one and the caller wants overlap, else the base
        # (inline) layout — window (start, end) bounds are identical,
        # only offsets and the per-window leads differ. Even a layout
        # with all-zero leads engages the engine: writeback overlap
        # needs no lead.
        pf = spill.prefetch if (spill is not None and prefetch) else None
        self._prefetch = pf
        self._windows: dict[int, tuple[StageWindow, ...]] = (
            (pf.windows if pf is not None else spill.windows)
            if spill is not None
            else {}
        )
        #: per-(buffer, window start) prefetch lead; missing or 0 means
        #: that window's transfers execute inline
        self._lead_of: dict[tuple[int, int], int] = (
            {
                (b, w.start): lead
                for b, ws in pf.windows.items()
                for w, lead in zip(ws, pf.window_leads[b])
            }
            if pf is not None
            else {}
        )
        self._engine: _TransferEngine | None = (
            _TransferEngine(
                link,
                batch_sleeps=(
                    spill is not None and spill.tile_bytes is not None
                ),
            )
            if pf is not None
            else None
        )
        self._region_offset: Mapping[int, int] = (
            pf.resident_offsets
            if pf is not None
            else (spill.resident_offsets if spill is not None else plan.offsets)
        )
        #: the on-chip promise every run is held to (resident region)
        self._capacity_bytes = (
            spill.capacity_bytes if spill is not None else plan.arena_bytes
        )

        intra = intra_buffer_offsets(graph, self.model)
        self._check_write_hazards(intra)
        self._schedule_pos = schedule.positions()
        self._buf_of_name = {
            name: self.model.buffer_of[i] for i, name in enumerate(idx.order)
        }
        self._elem_offset: dict[str, int] = {}
        self._intra_elem: dict[str, int] = {}
        for i, name in enumerate(idx.order):
            b = self.model.buffer_of[i]
            if intra[name] % self._itemsize:
                raise ExecutionError(
                    f"intra-buffer offset {intra[name]} of {name!r} is not "
                    f"aligned to the {self._itemsize}-byte element size"
                )
            self._intra_elem[name] = intra[name] // self._itemsize
            if b in self._spilled:
                continue  # staged per window: no fixed arena offset
            byte_off = self._region_offset[b] + intra[name]
            if byte_off % self._itemsize:
                raise ExecutionError(
                    f"planned offset {byte_off} of {name!r} is not aligned "
                    f"to the {self._itemsize}-byte element size"
                )
            self._elem_offset[name] = byte_off // self._itemsize

        # spilled-buffer geometry (element units) + per-node touch sets
        self._buf_elems: dict[int, int] = {}
        self._home_elem: dict[int, int] = {}
        self._touched_spilled: dict[str, tuple[int, ...]] = {}
        self._touch_count: dict[str, int] = {}
        #: tile streaming (None = whole-buffer staging): staging slots
        #: hold one tile, kernels bind scratch backing stores, and all
        #: fetch/writeback traffic moves per-tile pieces
        self._tile_bytes: int | None = (
            spill.tile_bytes if spill is not None else None
        )
        if self._tile_bytes is not None and (
            self._tile_bytes <= 0 or self._tile_bytes % self._itemsize
        ):
            raise ExecutionError(
                f"spill plan tile_bytes ({self._tile_bytes}) must be a "
                f"positive multiple of the {self._itemsize}-byte element "
                "size"
            )
        #: per spilled buffer: staging-slot bytes (tile-clamped under
        #: tiling, full size otherwise) and the shared tile geometry
        self._slot_bytes: dict[int, int] = {}
        self._tile_spans: dict[int, tuple[tuple[int, int], ...]] = {}
        spill_extent = 0
        window_extent = 0
        if spill is not None:
            for b in self._spilled:
                size = self.model.buf_size[b]
                home = spill.home_offsets[b]
                if (
                    size % self._itemsize
                    or home % self._itemsize
                    or any(
                        w.offset % self._itemsize for w in self._windows[b]
                    )
                ):
                    raise ExecutionError(
                        f"spill plan for buffer {b} is not aligned to the "
                        f"{self._itemsize}-byte element size"
                    )
                self._buf_elems[b] = size // self._itemsize
                self._home_elem[b] = home // self._itemsize
                if self._tile_bytes is None:
                    self._slot_bytes[b] = size
                else:
                    self._slot_bytes[b] = min(size, self._tile_bytes)
                    self._tile_spans[b] = tile_spans(size, self._tile_bytes)
                spill_extent = max(spill_extent, home + size)
                window_extent = max(
                    window_extent,
                    max(
                        w.offset + self._slot_bytes[b]
                        for w in self._windows[b]
                    ),
                )
            # homes must be pairwise disjoint — the plan document does
            # not carry buffer sizes, so this cross-check against the
            # graph's buffer model is the executor's job (a corrupt
            # artifact with aliased homes would silently corrupt data)
            homes = sorted(
                (spill.home_offsets[b], self.model.buf_size[b], b)
                for b in self._spilled
            )
            for (off_a, size_a, a), (off_b, _, b2) in zip(homes, homes[1:]):
                if off_a + size_a > off_b:
                    raise ExecutionError(
                        f"spill plan home slots overlap: buffers {a} "
                        f"([{off_a}, {off_a + size_a})) and {b2} "
                        f"(starting at {off_b}) share spill-region bytes"
                    )
            # the planner's touch model, verbatim — capacity floors and
            # staging sets must never diverge from it
            for name, bufs in zip(schedule, step_touches(graph, schedule, self.model)):
                self._touch_count[name] = len(bufs)
                touched = tuple(b for b in bufs if b in self._spilled)
                if touched:
                    self._touched_spilled[name] = touched
        self._spill_elems = -(-spill_extent // self._itemsize)

        # sized to the layout's true extent so every site view exists
        # even under a plan that understates arena_bytes (the run-time
        # overflow check still holds such a plan to its promise)
        resident_promise = (
            pf.resident_bytes
            if pf is not None
            else (spill.resident_bytes if spill is not None else plan.arena_bytes)
        )
        self._arena_elems = max(
            -(-resident_promise // self._itemsize),
            -(-window_extent // self._itemsize),
            max(
                (
                    self._elem_offset[name] + graph.node(name).output.elements
                    for name in self._elem_offset
                ),
                default=0,
            ),
        )

        # The arena and its per-node views live for the executor's whole
        # lifetime: one allocation, reused by every run. Row b is the
        # complete single-sample arena of sample b — the per-sample
        # layout solved above is stamped out batch_size times, byte for
        # byte. Everything the hot loop needs per step (site view,
        # kernel, argument views, parameters, liveness trace) is
        # compiled once per (output subset, batch width) and cached.
        self._direct = self._plan_direct_writes()
        self._alloc_arena()
        #: compiled run plans keyed by (output subset or None for the
        #: full schedule, batch width; _UNBATCHED = single-sample path)
        self._run_plans: dict[tuple[frozenset[str] | None, int], _RunPlan] = {}
        self._pinned = {(None, _UNBATCHED)}
        if batch_size > 1:
            self._pinned.add((None, batch_size))
        for key in self._pinned:
            self._run_plans[key] = self._compile_run_plan(
                tuple(self.schedule), 0, key[1]
            )

    def _alloc_arena(self) -> None:
        """(Re)allocate the zeroed region(s) and rebuild every site view."""
        self._arena = np.zeros(
            (self.batch_size, self._arena_elems), dtype=_EXEC_DTYPE
        )
        #: off-chip home bytes of spilled buffers (empty without spill)
        self._spill_arena = np.zeros(
            (self.batch_size, self._spill_elems), dtype=_EXEC_DTYPE
        )
        #: tile mode: per-buffer backing stores kernels bind into while
        #: tiles stream through the (single, tile-sized) staging slot —
        #: the functional stand-in for a kernel consuming its operands
        #: tile by tile, with the same per-tile traffic accounting as
        #: the Fig 11 simulator
        self._scratch: dict[int, np.ndarray] = {
            b: np.zeros((self.batch_size, self._buf_elems[b]), _EXEC_DTYPE)
            for b in (
                sorted(self._spilled) if self._tile_bytes is not None else ()
            )
        }
        #: per-node views keyed by batch width (_UNBATCHED = row-0
        #: views with the spec's own shape; n >= 1 = (n, ...) views
        #: over the first n rows), built lazily per width
        self._sites: dict[int, dict[str, np.ndarray]] = {}

    def _check_write_hazards(self, intra: dict[str, int]) -> None:
        """Reject schedules under which buffer sharing corrupts a read.

        Two members of one buffer with overlapping byte ranges are fine
        only while nobody reads the earlier tensor after the later one
        writes — e.g. an in-place accumulator whose target has a second
        consumer scheduled after the overwrite would silently read the
        *new* bytes. A view node rewriting an aliased operand's slice
        is exempt: it copies the identical bytes back.
        """
        from repro.graph.analysis import bits

        graph, model = self.graph, self.model
        idx = model.index
        pos = self.schedule.positions()

        def aliased_inputs(node: Node) -> set[str]:
            indices = node.attrs.get("view_inputs")
            if indices is None:
                indices = range(len(node.inputs))
            return {node.inputs[j] for j in indices}

        for b in range(model.n_buffers):
            members = [
                (idx.order[i], intra[idx.order[i]], idx.out_bytes[i])
                for i in bits(model.buf_members[b])
            ]
            for vi, (a, a_off, a_sz) in enumerate(members):
                for b2, b_off, b_sz in members[vi + 1 :]:
                    if not (a_off < b_off + b_sz and b_off < a_off + a_sz):
                        continue  # disjoint slices (e.g. view operands)
                    # late (scheduled later) writes over early's bytes
                    early, late = (a, b2) if pos[a] <= pos[b2] else (b2, a)
                    writer = graph.node(late)
                    if writer.memory.view and early in aliased_inputs(writer):
                        continue  # byte-preserving copy-back
                    clobbered = [
                        c
                        for c in graph.succs(early)
                        if c != late and pos[c] > pos[late]
                    ]
                    if clobbered:
                        raise ExecutionError(
                            f"schedule is unsafe for this buffer layout: "
                            f"{late!r} overwrites {early!r}'s bytes at step "
                            f"{pos[late]}, but {clobbered[0]!r} still reads "
                            f"{early!r} at step {pos[clobbered[0]]}"
                        )

    # ------------------------------------------------------------------
    @property
    def prefetch_active(self) -> bool:
        """True when runs overlap transfers on a background engine
        (False again once :meth:`close` shuts the engine down)."""
        return self._engine is not None and not self._engine._closed

    def close(self) -> None:
        """Release the background transfer engine, if any (idempotent).

        Serving pools call this when an executor is discarded; a closed
        executor rejects further prefetch runs."""
        engine = self._engine
        if engine is not None:
            engine.close()

    def __del__(self) -> None:  # backstop for unpooled executors
        try:
            self.close()
        except Exception:
            pass

    def _window_at(self, b: int, step: int) -> StageWindow:
        """The *active-layout* staging window of buffer ``b`` covering
        schedule ``step`` (prefetch offsets when the engine is on)."""
        ws = self._windows[b]
        i = bisect.bisect_right([w.start for w in ws], step) - 1
        if i >= 0 and ws[i].start <= step < ws[i].end:
            return ws[i]
        raise ExecutionError(
            f"step {step} touches spilled buffer {b} outside every "
            "staging window (corrupt spill plan)"
        )

    @property
    def arena_nbytes(self) -> int:
        """Actual bytes held by the preallocated resident arena array
        (all ``batch_size`` rows)."""
        return self._arena.nbytes

    @property
    def spill_nbytes(self) -> int:
        """Bytes held by the off-chip spill region (0 without spill)."""
        return self._spill_arena.nbytes

    def _sites_for(self, n: int) -> dict[str, np.ndarray]:
        """Per-node arena views at batch width ``n``, built lazily once
        per arena allocation.

        ``n == _UNBATCHED`` binds row-0 views with each spec's own shape
        (the single-sample hot path); ``n >= 1`` binds ``(n, ...)``
        views spanning the first ``n`` rows — zero-copy strided views
        into the same bytes, so batched and single-sample runs share
        one arena. Spilled nodes are absent: their views move per
        staging window and are bound at step-table compile time.
        """
        cached = self._sites.get(n)
        if cached is not None:
            return cached
        sites: dict[str, np.ndarray] = {}
        for name in self.model.index.order:
            if name not in self._elem_offset:
                continue  # spilled: bound per window
            node = self.graph.node(name)
            start = self._elem_offset[name]
            stop = start + node.output.elements
            if n == _UNBATCHED:
                sites[name] = self._arena[0, start:stop].reshape(node.output.shape)
            else:
                # splitting the (contiguous) trailing axis of a strided
                # (n, elems) slice is always expressible as a view
                sites[name] = self._arena[:n, start:stop].reshape(
                    (n,) + node.output.shape
                )
        self._sites[n] = sites
        return sites

    def _elem_range(self, name: str) -> tuple[int, int]:
        start = self._elem_offset[name]
        return start, start + self.graph.node(name).output.elements

    def _plan_direct_writes(self) -> dict[str, str]:
        """Choose, per node, a destination-write kernel (recorded by op
        name; resolved against the unbatched or batched table at plan
        compile time) that is provably safe for this arena layout (see
        module docstring); everything else keeps the
        temporary-then-copy fallback. The safety argument is purely
        about per-sample element ranges, which batched rows replicate
        exactly — one verdict covers every batch width."""

        def disjoint_or_equal(src: str, lo: int, hi: int) -> bool:
            s_lo, s_hi = self._elem_range(src)
            return s_hi <= lo or hi <= s_lo or (s_lo == lo and s_hi == hi)

        direct: dict[str, str] = {}
        for name in self.model.index.order:
            node = self.graph.node(name)
            out_kernel = OUT_KERNELS.get(node.op)
            if out_kernel is None or node.op not in KERNELS:
                continue
            if self._touched_spilled.get(name):
                # spilled sites move per staging window; the disjointness
                # argument below is about fixed ranges, so keep the
                # always-safe temporary-then-copy path
                continue
            spec = node.output
            out_lo, out_hi = self._elem_range(name)
            in_specs = [self.graph.node(s).output for s in node.inputs]
            if node.op == "concat":
                # operands land at consecutive axis-0 slices of the output
                if any(
                    s.shape[1:] != spec.shape[1:] or len(s.shape) != len(spec.shape)
                    for s in in_specs
                ):
                    continue
                if sum(s.shape[0] for s in in_specs) != spec.shape[0]:
                    continue
                rel = 0
                ok = True
                for src, s in zip(node.inputs, in_specs):
                    s_lo, s_hi = self._elem_range(src)
                    d_lo, d_hi = out_lo + rel, out_lo + rel + s.elements
                    if not (s_hi <= d_lo or d_hi <= s_lo or s_lo == d_lo):
                        ok = False
                        break
                    rel += s.elements
                if not ok:
                    continue
            elif node.op in ("flatten", "slice_channels"):
                if node.op == "flatten" and in_specs[0].elements != spec.elements:
                    continue
                if node.op == "slice_channels":
                    lo, hi = node.attrs["range"]
                    if spec.shape != (hi - lo,) + in_specs[0].shape[1:]:
                        continue
                if not disjoint_or_equal(node.inputs[0], out_lo, out_hi):
                    continue
            else:
                # positionwise elementwise chain: every input must have
                # the output's exact shape and sit either away from the
                # destination or exactly on it (in-place). Only the
                # first two operands are read in lockstep with the
                # write; an n-ary chain reads operands 2+ *after* the
                # destination was written, so those must be strictly
                # disjoint, never merely identical.
                if any(s.shape != spec.shape for s in in_specs):
                    continue
                ok = True
                for j, src in enumerate(node.inputs):
                    s_lo, s_hi = self._elem_range(src)
                    disjoint = s_hi <= out_lo or out_hi <= s_lo
                    identical = s_lo == out_lo and s_hi == out_hi
                    if not (disjoint or (identical and j < 2)):
                        ok = False
                        break
                if not ok:
                    continue
            direct[name] = node.op
        return direct

    def _window_view(
        self, name: str, window: StageWindow, n: int
    ) -> np.ndarray:
        """View of spilled node ``name`` inside its staged buffer slot
        (whole-buffer staging) or its scratch backing store (tile
        streaming — the slot holds one tile at a time, so kernels bind
        the full-tensor scratch instead)."""
        node = self.graph.node(name)
        start = self._intra_elem[name]
        if self._tile_bytes is not None:
            base = self._scratch[self._buf_of_name[name]]
        else:
            base = self._arena
            start += window.offset // self._itemsize
        stop = start + node.output.elements
        if n == _UNBATCHED:
            return base[0, start:stop].reshape(node.output.shape)
        return base[:n, start:stop].reshape((n,) + node.output.shape)

    def _stage_and_home(
        self, b: int, window: StageWindow, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-buffer (staging slot, home slot) views for fetch and
        writeback steps — raw element runs, no tensor shape."""
        elems = self._buf_elems[b]
        s0 = window.offset // self._itemsize
        h0 = self._home_elem[b]
        if n == _UNBATCHED:
            return (
                self._arena[0, s0 : s0 + elems],
                self._spill_arena[0, h0 : h0 + elems],
            )
        return (
            self._arena[:n, s0 : s0 + elems],
            self._spill_arena[:n, h0 : h0 + elems],
        )

    def _tile_views(
        self, b: int, window: StageWindow, piece: tuple[int, int, int], n: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(slot, home, scratch) views for one tile piece of spilled
        buffer ``b`` — raw element runs of ``piece``'s bytes, with the
        slot view at the piece's intra-tile offset inside the window's
        tile slot."""
        lo, hi, slot_lo = piece
        it = self._itemsize
        ne = (hi - lo) // it
        s0 = window.offset // it + slot_lo // it
        h0 = self._home_elem[b] + lo // it
        c0 = lo // it
        if n == _UNBATCHED:
            return (
                self._arena[0, s0 : s0 + ne],
                self._spill_arena[0, h0 : h0 + ne],
                self._scratch[b][0, c0 : c0 + ne],
            )
        return (
            self._arena[:n, s0 : s0 + ne],
            self._spill_arena[:n, h0 : h0 + ne],
            self._scratch[b][:n, c0 : c0 + ne],
        )

    def _compile_run_plan(
        self, order: tuple[str, ...], executed0: int, n: int
    ) -> "_RunPlan":
        """Bake one execution order into a flat step table at batch
        width ``n`` (``_UNBATCHED`` for the single-sample path).

        The liveness trace is replayed here, once: which buffers are
        live at each step — and therefore the measured high-water mark —
        depends only on (schedule, plan, buffer model), never on request
        data or batch width (rows are layout-identical), so re-deriving
        it per request would re-measure a constant. The replay also
        locates the first overflowing step, if any, so ``run`` can fail
        with the same diagnostic the per-step check used to produce —
        an understated plan is rejected statically, before any kernel
        (batched or not) touches the arena.

        Under a spill plan the replay also inserts the fetch/writeback
        data movement (see the module docstring): a spilled buffer's
        staging slot is held from its window entry to its last executed
        touch in that window, a window entry after the buffer's first
        write fetches the home bytes, and a dirty window exit writes
        them back when the data is needed again. The resulting traffic
        is data-independent too, so it is counted here, once per plan.

        Transfer events are collected against the executed order first
        and *placed* second. Inline placement reproduces the historical
        step order exactly (fetches before the kernel, writebacks
        after). Prefetch placement hands each leaded window's transfers
        to the engine instead: the fetch is enqueued up to ``lead``
        schedule positions early (never before the same buffer's
        previous writeback — the FIFO queue then orders the home
        accesses), a single per-step sync waits for the highest job
        number the step depends on (fetch completions at window entry,
        writeback completions when a slot reservation expires or an
        inline fetch needs the home bytes), and leftover jobs drain at
        end of run. Zero-lead windows keep inline transfers even in
        prefetch mode.
        """
        graph, model, params = self.graph, self.model, self.params
        if n == _UNBATCHED:
            kernel_table, out_table = KERNELS, OUT_KERNELS
            batch_dims: tuple[int, ...] = ()
        else:
            kernel_table, out_table = BATCH_KERNELS, BATCH_OUT_KERNELS
            batch_dims = (n,)
        sites = self._sites_for(n)
        idx = model.index
        spill = self.spill
        spilled = self._spilled
        pos = self._schedule_pos
        kernel_rows: list[tuple] = []  # exactly one row per executed step
        direct_writes = 0
        copy_writes = 0
        live: set[int] = set()
        executed = executed0
        measured_peak = 0
        overflow_at: str | None = None

        # static spill bookkeeping for THIS order: which window each
        # executed touch lands in, and where windows (as executed) end
        fetches = writebacks = bytes_in = bytes_out = accesses = 0
        staged_win: dict[int, StageWindow] = {}
        staged_extent: dict[int, int] = {}
        written: set[int] = set()
        dirty: set[int] = set()
        windows_at: dict[int, dict[int, StageWindow]] = {}
        last_in_win: dict[tuple[int, int], int] = {}
        last_touch: dict[int, int] = {}
        #: transfer events in executed order: (buffer, window, step
        #: index, pieces) — fetch events at window entry, writeback
        #: events at dirty window exit; placement happens after the
        #: replay. ``pieces`` is None for whole-buffer staging, or the
        #: per-tile transfer pieces under tile streaming.
        #: ``entry_events`` records every window entry (fetching or
        #: not): prefetch placement needs to know when each staging
        #: slot is first touched to scope writeback syncs
        fetch_events: list[
            tuple[int, StageWindow, int, list[tuple[int, int, int]] | None]
        ] = []
        wb_events: list[
            tuple[int, StageWindow, int, list[tuple[int, int, int]] | None]
        ] = []
        entry_events: list[tuple[int, StageWindow, int]] = []
        tiled = self._tile_bytes is not None
        #: tile mode: merged byte ranges each window's kernels bind
        #: ((b, w.start) keyed), plus each buffer's windows in entry
        #: order — scratch is shared across a buffer's windows, so a
        #: tile fetch must trail every earlier window whose ranges
        #: intersect the piece (disjoint windows can neither read nor
        #: dirty the piece's scratch or home bytes)
        win_ranges: dict[tuple[int, int], list[tuple[int, int]]] = {}
        win_order: list[tuple[int, int]] = []
        #: tile mode, tracked in executed order: bytes some kernel has
        #: produced (scratch holds them) / bytes written back to the
        #: home (a later fetch may legally read exactly these)
        produced: dict[int, list[tuple[int, int]]] = {}
        homed: dict[int, list[tuple[int, int]]] = {}
        if spilled:
            it = self._itemsize
            for oi, name in enumerate(order):
                touched = self._touched_spilled.get(name, ())
                for b in touched:
                    w = self._window_at(b, pos[name])
                    windows_at.setdefault(b, {})[oi] = w
                    last_in_win[(b, w.start)] = oi
                    last_touch[b] = oi
                    if not tiled:
                        continue
                    if (b, w.start) not in win_ranges:
                        win_order.append((b, w.start))
                    acc = win_ranges.setdefault((b, w.start), [])
                    for t in (name, *graph.node(name).inputs):
                        if self._buf_of_name[t] != b:
                            continue
                        t_lo = self._intra_elem[t] * it
                        _range_add(
                            acc, t_lo, t_lo + graph.node(t).output.bytes
                        )
        #: per buffer, its windows in entry order as (start, last touch
        #: executed index, touched ranges) — the per-piece fetch floor
        #: scans this
        win_seq: dict[int, list[tuple[int, int, list[tuple[int, int]]]]] = {}
        for b, start in win_order:
            win_seq.setdefault(b, []).append(
                (start, last_in_win[(b, start)], win_ranges[(b, start)])
            )

        for oi, name in enumerate(order):
            node = graph.node(name)
            u = idx.index[name]
            b_own = model.buffer_of[u]
            if spill is not None:
                accesses += self._touch_count[name]
            # stage every spilled buffer this step touches (fetching
            # home bytes unless nothing was ever written to them)
            for b in self._touched_spilled.get(name, ()):
                w = windows_at[b][oi]
                if staged_win.get(b) is not w:
                    staged_win[b] = w
                    staged_extent[b] = w.offset + self._slot_bytes[b]
                    entry_events.append((b, w, oi))
                    if tiled:
                        # fetch = touched tiles clipped to home bytes a
                        # previous writeback produced; never-homed bytes
                        # the window reads are still live in scratch
                        pieces = _tile_pieces(
                            win_ranges[(b, w.start)],
                            homed.get(b, []),
                            self._tile_spans[b],
                        )
                        if pieces:
                            fetch_events.append((b, w, oi, pieces))
                            fetches += len(pieces)
                            bytes_in += sum(p[1] - p[0] for p in pieces)
                    elif b in written:
                        fetch_events.append((b, w, oi, None))
                        fetches += 1
                        bytes_in += model.buf_size[b]
            if b_own not in spilled:
                live.add(b_own)
            extent = max(
                max(
                    (
                        self._region_offset[bb] + model.buf_size[bb]
                        for bb in live
                    ),
                    default=0,
                ),
                max(staged_extent.values(), default=0),
            )
            measured_peak = max(measured_peak, extent)
            if overflow_at is None and measured_peak > self._capacity_bytes:
                overflow_at = name
            executed |= 1 << u
            for b2 in model.check_buffers[u]:
                if model.buf_persistent[b2]:
                    continue
                if not (model.buf_required[b2] & ~executed):
                    live.discard(b2)

            def view_of(nm: str) -> np.ndarray:
                bb = self._buf_of_name[nm]
                if bb in spilled:
                    return self._window_view(nm, staged_win[bb], n)
                return sites[nm]

            site = view_of(name)
            shape = batch_dims + node.output.shape
            if node.op == "input":
                kernel_rows.append(
                    (_STEP_INPUT, name, site, None, (), {}, {}, shape)
                )
            else:
                direct_op = self._direct.get(name)
                args = tuple(view_of(src) for src in node.inputs)
                node_params = params.get(name, {})
                if direct_op is not None:
                    kernel_rows.append(
                        (
                            _STEP_DIRECT,
                            name,
                            site,
                            out_table[direct_op],
                            args,
                            node.attrs,
                            node_params,
                            None,
                        )
                    )
                    direct_writes += 1
                else:
                    kernel = kernel_table.get(node.op)
                    if kernel is None:
                        raise ExecutionError(f"no kernel for op {node.op!r}")
                    kernel_rows.append(
                        (
                            _STEP_COPY,
                            name,
                            site,
                            kernel,
                            args,
                            node.attrs,
                            node_params,
                            shape,
                        )
                    )
                    copy_writes += 1

            # window exits: write dirty staged bytes home when the data
            # is needed again (or holds a graph output); dead windows
            # drop silently, exactly like the memsim eviction rule
            if b_own in spilled:
                written.add(b_own)
                dirty.add(b_own)
                if tiled:
                    o_lo = self._intra_elem[name] * self._itemsize
                    _range_add(
                        produced.setdefault(b_own, []),
                        o_lo,
                        o_lo + node.output.bytes,
                    )
            for b in self._touched_spilled.get(name, ()):
                w = staged_win[b]
                if last_in_win.get((b, w.start)) != oi:
                    continue  # window continues at a later executed step
                has_later = last_touch[b] != oi
                if b in dirty and (has_later or model.buf_persistent[b]):
                    if tiled:
                        # writeback = touched tiles clipped to produced
                        # bytes (the rest has no defined value)
                        pieces = _tile_pieces(
                            win_ranges[(b, w.start)],
                            produced.get(b, []),
                            self._tile_spans[b],
                        )
                        wb_events.append((b, w, oi, pieces))
                        writebacks += len(pieces)
                        bytes_out += sum(p[1] - p[0] for p in pieces)
                        hb = homed.setdefault(b, [])
                        for p_lo, p_hi, _s in pieces:
                            _range_add(hb, p_lo, p_hi)
                    else:
                        wb_events.append((b, w, oi, None))
                        writebacks += 1
                        bytes_out += model.buf_size[b]
                    dirty.discard(b)
                elif not has_later:
                    dirty.discard(b)
                staged_extent.pop(b, None)
        steps, total_jobs = self._place_transfers(
            order, kernel_rows, fetch_events, wb_events, entry_events,
            win_seq, n
        )
        return _RunPlan(
            steps=steps,
            measured_peak_bytes=measured_peak,
            overflow_at=overflow_at,
            direct_writes=direct_writes,
            copy_writes=copy_writes,
            spill_fetches=fetches,
            spill_writebacks=writebacks,
            spill_bytes_in=bytes_in,
            spill_bytes_out=bytes_out,
            spill_accesses=accesses,
            total_jobs=total_jobs,
        )

    def _place_transfers(
        self,
        order: tuple[str, ...],
        kernel_rows: list[tuple],
        fetch_events: list,
        wb_events: list,
        entry_events: list[tuple[int, StageWindow, int]],
        win_seq: dict[int, list[tuple[int, int, list[tuple[int, int]]]]],
        n: int,
    ) -> tuple[tuple[tuple, ...], int]:
        """Interleave the collected transfer events with the kernel rows.

        Without an engine this reproduces the historical inline order
        exactly: a step's fetches immediately before its kernel row, its
        writebacks immediately after — a tile piece expands to a
        link-timed FETCH/WRITEBACK through the tile slot plus a plain
        STAGE hop between slot and scratch. With the engine, leaded
        windows route through the FIFO instead, under the placement
        rules documented on :meth:`_compile_run_plan`; zero-lead
        whole-buffer windows stay inline, while *every* tile piece
        rides the engine as one two-hop job — the FIFO totally orders
        all tile-slot accesses, which is what makes the single
        engine-private slot race-free. Returns ``(steps, total engine
        jobs per run)``.
        """
        if self._engine is None:
            steps: list[tuple] = []
            fi = wi = 0
            nf, nw = len(fetch_events), len(wb_events)
            for oi, row in enumerate(kernel_rows):
                while fi < nf and fetch_events[fi][2] == oi:
                    b, w, _, pieces = fetch_events[fi]
                    if pieces is None:
                        stage, home = self._stage_and_home(b, w, n)
                        steps.append(
                            (
                                _STEP_FETCH,
                                f"<fetch:b{b}>",
                                stage,
                                None,
                                (home,),
                                None,
                                None,
                                None,
                            )
                        )
                    else:
                        for piece in pieces:
                            slot, home, scr = self._tile_views(
                                b, w, piece, n
                            )
                            steps.append(
                                (_STEP_FETCH, f"<fetch:b{b}>", slot, None,
                                 (home,), None, None, None)
                            )
                            steps.append(
                                (_STEP_STAGE, f"<stage:b{b}>", scr, None,
                                 (slot,), None, None, None)
                            )
                    fi += 1
                steps.append(row)
                while wi < nw and wb_events[wi][2] == oi:
                    b, w, _, pieces = wb_events[wi]
                    if pieces is None:
                        stage, home = self._stage_and_home(b, w, n)
                        steps.append(
                            (
                                _STEP_WRITEBACK,
                                f"<writeback:b{b}>",
                                home,
                                None,
                                (stage,),
                                None,
                                None,
                                None,
                            )
                        )
                    else:
                        for piece in pieces:
                            slot, home, scr = self._tile_views(
                                b, w, piece, n
                            )
                            steps.append(
                                (_STEP_STAGE, f"<stage:b{b}>", slot, None,
                                 (scr,), None, None, None)
                            )
                            steps.append(
                                (_STEP_WRITEBACK, f"<writeback:b{b}>",
                                 home, None, (slot,), None, None, None)
                            )
                    wi += 1
            return tuple(steps), 0

        pos = self._schedule_pos
        n_exec = len(order)
        sched = [pos[nm] for nm in order]
        # full per-buffer writeback history (exit step indices, both
        # inline and engine) — a later fetch of the same buffer reads
        # home bytes the previous writeback produces, so its enqueue
        # can never cross that writeback
        wb_exits: dict[int, list[int]] = {}
        for b, _w, oi, _p in wb_events:
            wb_exits.setdefault(b, []).append(oi)
        inline_f: dict[int, list[tuple[int, StageWindow]]] = {}
        inline_w: dict[int, list[tuple[int, StageWindow]]] = {}
        #: enqueue oi -> [(buffer, window, entry oi, piece|None)]
        eng_f: dict[int, list[tuple]] = {}
        #: exit oi -> [(buffer, window, due oi, piece|None)]
        eng_w: dict[int, list[tuple]] = {}
        #: (buffer, window start) pairs whose fetch routes through the
        #: engine — their window-entry fetch sync already orders every
        #: earlier FIFO job before the first kernel touch of the slot
        eng_fetch_windows: set[tuple[int, int]] = set()
        for b, w, entry_oi, pieces in fetch_events:
            lead = self._lead_of.get((b, w.start), 0)
            if pieces is None and lead == 0:
                inline_f.setdefault(entry_oi, []).append((b, w))
                continue
            eo = bisect.bisect_left(sched, max(0, w.start - lead))
            if pieces is None:
                exits = wb_exits.get(b, ())
                i = bisect.bisect_left(exits, entry_oi)
                if i:
                    eo = max(eo, exits[i - 1] + 1)
                eng_f.setdefault(min(eo, entry_oi), []).append(
                    (b, w, entry_oi, None)
                )
            else:
                # per-piece floor: the fetch writes scratch[piece] (hop
                # 2) and reads home[piece] (hop 1), so it must trail the
                # last earlier window of b whose touched ranges
                # intersect the piece — that window's kernels read/write
                # exactly those scratch bytes and its exit writeback
                # (FIFO-enqueued at its last touch) refreshes exactly
                # those home bytes. Windows touching disjoint ranges
                # impose nothing, which is what lets consecutive
                # windows of a hot buffer keep their full prefetch lead.
                prior = [
                    (wp_last, wp_ranges)
                    for wp_start, wp_last, wp_ranges in win_seq[b]
                    if wp_start < w.start
                ]
                for piece in pieces:
                    p_lo, p_hi = piece[0], piece[1]
                    floor = 0
                    for wp_last, wp_ranges in prior:
                        if wp_last + 1 > floor and any(
                            r_lo < p_hi and p_lo < r_hi
                            for r_lo, r_hi in wp_ranges
                        ):
                            floor = wp_last + 1
                    eng_f.setdefault(
                        min(max(eo, floor), entry_oi), []
                    ).append((b, w, entry_oi, piece))
            eng_fetch_windows.add((b, w.start))
        size = self.model.buf_size
        # staging slots share the region with resident buffers (the
        # layout interleaves both interval sets), so a pending
        # writeback's slot bytes can be recycled by a resident buffer
        # whose lifetime starts after the window's extended reservation
        # — collect each resident buffer's producing-write steps
        resident_writes: dict[int, list[int]] = {}
        #: spilled buffers' own-write steps with the byte range each
        #: kernel produces — a tiled writeback piece only waits on
        #: later writes that overlap its bytes
        scratch_writes: dict[int, list[tuple[int, int, int]]] = {}
        spilled = self._spilled
        it = self._itemsize
        for oi, name in enumerate(order):
            r = self._buf_of_name[name]
            if r not in spilled:
                resident_writes.setdefault(r, []).append(oi)
            else:
                o_lo = self._intra_elem[name] * it
                scratch_writes.setdefault(r, []).append(
                    (oi, o_lo, o_lo + self.graph.node(name).output.bytes)
                )
        for b, w, exit_oi, pieces in wb_events:
            # every writeback rides the engine (no lead needed): it
            # must only land before its staging slot is next touched
            # from the compute thread — the first later window
            # overlapping the slot whose entry is NOT already ordered
            # behind this job by its own engine-fetch sync, or the
            # first write to an overlapping resident buffer. Slot
            # reservations keep conflicting *engine* fetches enqueued
            # after this writeback, so the FIFO handles those.
            # Home-byte readers are fetches of the same buffer: engine
            # ones are FIFO-ordered, inline ones sync explicitly below.
            lo, hi = w.offset, w.offset + self._slot_bytes[b]
            due = n_exec
            if pieces is None:
                for b2, w2, e2 in entry_events:
                    if e2 <= exit_oi or e2 >= due:
                        continue
                    if (b2, w2.start) in eng_fetch_windows:
                        continue
                    if w2.offset < hi and lo < w2.offset + self._slot_bytes[b2]:
                        due = e2
            for r, ois in resident_writes.items():
                off = self._region_offset[r]
                if off < hi and lo < off + size[r]:
                    i = bisect.bisect_right(ois, exit_oi)
                    if i < len(ois) and ois[i] < due:
                        due = ois[i]
            if pieces is None:
                eng_w.setdefault(exit_oi, []).append((b, w, due, None))
            else:
                # tiled: compute never touches tile slots (kernels bind
                # scratch), and every tiled transfer rides the FIFO, so
                # slot conflicts are engine-vs-engine and ordered by
                # enqueue position. The compute-side hazard is the
                # drain's scratch read racing a later own write of b —
                # but only one that overlaps the piece's bytes; each
                # tensor is produced once, so disjoint-range writebacks
                # drain lazily off the critical path.
                ws = scratch_writes.get(b, ())
                for piece in pieces:
                    p_lo, p_hi = piece[0], piece[1]
                    p_due = due
                    for w_oi, w_lo, w_hi in ws:
                        if w_oi <= exit_oi:
                            continue
                        if w_oi >= p_due:
                            break
                        if w_lo < p_hi and p_lo < w_hi:
                            p_due = w_oi
                            break
                    eng_w.setdefault(exit_oi, []).append((b, w, p_due, piece))

        # FIFO job numbers follow step-table enqueue order: walk the
        # executed order once, fetch enqueues before writeback enqueues
        # within a step, and record where each job must be complete
        job = 0
        need_at = [0] * n_exec
        eng_wb_hist: dict[int, list[tuple[int, int]]] = {}
        for oi in range(n_exec):
            for b, w, entry_oi, _piece in eng_f.get(oi, ()):
                job += 1
                need_at[entry_oi] = max(need_at[entry_oi], job)
            for b, w, due, _piece in eng_w.get(oi, ()):
                job += 1
                if due < n_exec:
                    need_at[due] = max(need_at[due], job)
                eng_wb_hist.setdefault(b, []).append((oi, job))
        total_jobs = job
        # an inline fetch reads home bytes a still-pending engine
        # writeback of the same buffer may be producing
        for oi, evs in inline_f.items():
            for b, _w in evs:
                hist = eng_wb_hist.get(b)
                if hist:
                    i = bisect.bisect_left(hist, (oi, 0))
                    if i:
                        need_at[oi] = max(need_at[oi], hist[i - 1][1])

        # assemble: [fetch enqueues][one sync][inline fetches][kernel]
        # [inline writebacks][writeback enqueues] per step; the FIFO
        # completes in submit order, so one wait on the highest needed
        # job covers every earlier one (``guaranteed`` skips redundant
        # syncs)
        steps = []
        guaranteed = 0
        for oi, row in enumerate(kernel_rows):
            for b, w, _entry, piece in eng_f.get(oi, ()):
                if piece is None:
                    stage, home = self._stage_and_home(b, w, n)
                    steps.append(
                        (
                            _STEP_ENQUEUE,
                            f"<prefetch:b{b}>",
                            stage,
                            None,
                            (home,),
                            None,
                            None,
                            None,
                        )
                    )
                else:
                    slot, home, scr = self._tile_views(b, w, piece, n)
                    hops = ((slot, home, True), (scr, slot, False))
                    steps.append(
                        (_STEP_ENQUEUE, f"<prefetch:b{b}>", None, None,
                         (), hops, None, None)
                    )
            need = need_at[oi]
            if need > guaranteed:
                steps.append(
                    (_STEP_SYNC, f"<sync:{need}>", None, None, (), need,
                     None, None)
                )
                guaranteed = need
            for b, w in inline_f.get(oi, ()):
                stage, home = self._stage_and_home(b, w, n)
                steps.append(
                    (
                        _STEP_FETCH,
                        f"<fetch:b{b}>",
                        stage,
                        None,
                        (home,),
                        None,
                        None,
                        None,
                    )
                )
            steps.append(row)
            for b, w in inline_w.get(oi, ()):
                stage, home = self._stage_and_home(b, w, n)
                steps.append(
                    (
                        _STEP_WRITEBACK,
                        f"<writeback:b{b}>",
                        home,
                        None,
                        (stage,),
                        None,
                        None,
                        None,
                    )
                )
            for b, w, _due, piece in eng_w.get(oi, ()):
                if piece is None:
                    stage, home = self._stage_and_home(b, w, n)
                    steps.append(
                        (
                            _STEP_ENQUEUE,
                            f"<drain:b{b}>",
                            home,
                            None,
                            (stage,),
                            None,
                            None,
                            None,
                        )
                    )
                else:
                    slot, home, scr = self._tile_views(b, w, piece, n)
                    hops = ((slot, scr, False), (home, slot, True))
                    steps.append(
                        (_STEP_ENQUEUE, f"<drain:b{b}>", None, None,
                         (), hops, None, None)
                    )
        return tuple(steps), total_jobs

    def _get_plan(self, wanted: list[str] | None, n: int) -> "_RunPlan":
        """The compiled plan for ``(output subset, batch width)``.

        ``wanted=None`` is the full schedule; otherwise the schedule is
        restricted to ancestors of ``wanted``, with every pruned node
        treated as already executed so shared buffers release once their
        *remaining* consumers have run (reference-executor semantics).
        """
        key = (None if wanted is None else frozenset(wanted), n)
        hit = self._run_plans.get(key)
        if hit is not None:
            return hit
        if wanted is None:
            order: tuple[str, ...] = tuple(self.schedule)
            pruned_mask = 0
        else:
            needed: set[str] = set()
            stack = list(key[0])  # type: ignore[arg-type]
            while stack:
                name = stack.pop()
                if name in needed:
                    continue
                needed.add(name)
                stack.extend(self.graph.node(name).inputs)
            order = tuple(nm for nm in self.schedule if nm in needed)
            idx = self.model.index
            pruned_mask = 0
            for name in idx.order:
                if name not in needed:
                    pruned_mask |= 1 << idx.index[name]
        compiled = self._compile_run_plan(order, pruned_mask, n)
        if len(self._run_plans) - len(self._pinned) >= _RUN_PLAN_CACHE_LIMIT:
            # drop the oldest unpinned plan (dict preserves insertion
            # order; the full-schedule plans stay)
            for stale in self._run_plans:
                if stale not in self._pinned:
                    del self._run_plans[stale]
                    break
        self._run_plans[key] = compiled
        return compiled

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute the schedule inside the executor's persistent arena.

        Returns copies of the requested ``outputs`` (default: graph
        sinks) — an intermediate output is snapshotted the moment it is
        produced, before any later in-place consumer can overwrite its
        bytes. Like the reference executor, an explicit ``outputs``
        subset prunes execution (and required feeds) to the ancestors of
        the requested nodes. Sets :attr:`last_stats` with the measured
        arena peak and raises :class:`ExecutionError` if that peak ever
        exceeds the plan's ``arena_bytes``.
        """
        return self._execute(feeds, outputs, _UNBATCHED)

    def run_batch(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
        batch: int | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute ``n`` stacked samples in one pass over the arena rows.

        Every feed carries a leading batch axis: input ``x`` of spec
        shape ``s`` is fed as ``(n, *s)`` with ``1 <= n <= batch_size``.
        ``batch`` makes ``n`` explicit; by default it is inferred from
        the feeds (which must agree). Outputs come back with the same
        leading axis, and sample ``b`` of every output is bitwise what
        :meth:`run` returns for sample ``b`` alone — stacking is a
        dispatch-amortisation strategy, not an approximation. A partial
        batch (``n < batch_size``) runs at its true size on the first
        ``n`` arena rows; nothing is padded. Sets :attr:`last_stats`
        with ``batch=n``.
        """
        n = batch
        if n is None:
            widths = {int(np.asarray(v).shape[0]) if np.ndim(v) else 0
                      for v in feeds.values()}
            if len(widths) != 1:
                raise ExecutionError(
                    "cannot infer the batch width: feeds have leading "
                    f"dimensions {sorted(widths)}; stack every feed to "
                    "(n, *spec.shape) or pass batch= explicitly"
                )
            n = widths.pop()
        if not 1 <= n <= self.batch_size:
            raise ExecutionError(
                f"batch width {n} outside this executor's capacity "
                f"1..{self.batch_size} (construct with batch_size={n} "
                "or larger)"
            )
        return self._execute(feeds, outputs, n)

    def _execute(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None,
        n: int,
    ) -> dict[str, np.ndarray]:
        wanted = list(outputs) if outputs is not None else self.graph.sinks
        unknown = [w for w in wanted if w not in self.graph]
        if unknown:
            raise ExecutionError(f"requested outputs never computed: {unknown}")
        subset = None if outputs is None else wanted
        plan = self._get_plan(subset, n)
        if plan.overflow_at is not None:
            if self.spill is not None:
                raise ExecutionError(
                    f"resident region overflow at {plan.overflow_at!r}: "
                    f"measured high-water mark {plan.measured_peak_bytes} "
                    f"exceeds the {self._capacity_bytes}-byte on-chip "
                    "capacity per sample (corrupt spill plan)"
                )
            raise ExecutionError(
                f"arena overflow at {plan.overflow_at!r}: measured high-water "
                f"mark {plan.measured_peak_bytes} exceeds the planned "
                f"{self.plan.arena_bytes} bytes per sample"
            )

        if self.scrub == "fresh":
            # brand-new arena: rebuild the views every step table binds
            # to, then recompile the plan against the new views
            self._alloc_arena()
            self._run_plans = {}
            for key in self._pinned:
                self._run_plans[key] = self._compile_run_plan(
                    tuple(self.schedule), 0, key[1]
                )
            plan = self._get_plan(subset, n)
        elif self.scrub == "zero":
            self._arena.fill(0.0)
            if self._spill_elems:
                self._spill_arena.fill(0.0)
            for scr in self._scratch.values():
                scr.fill(0.0)
        reused = self.scrub != "fresh" and self.runs > 0

        engine = self._engine
        link = self._link
        base = 0
        busy0 = 0.0
        if engine is not None:
            # leave no orphan job from an earlier failed run in flight,
            # then measure this run's jobs/busy-time against a clean
            # baseline
            engine.quiesce()
            base = engine.enqueued
            busy0 = engine.busy_s
        inline_stall_s = 0.0
        engine_wait_s = 0.0

        snapshots: dict[str, np.ndarray] = {}
        want = set(wanted)
        try:
            for (
                kind,
                name,
                site,
                fn,
                args,
                attrs,
                node_params,
                shape,
            ) in plan.steps:
                if kind == _STEP_ENQUEUE:
                    if site is None:  # tiled two-hop job
                        engine.submit_hops(attrs)  # type: ignore[union-attr]
                    else:
                        engine.submit(site, args[0])  # type: ignore[union-attr]
                    continue
                if kind == _STEP_SYNC:
                    engine_wait_s += engine.wait(  # type: ignore[union-attr]
                        base + attrs
                    )
                    continue
                if kind >= _STEP_FETCH:
                    # fetch / writeback: byte moves the compute stream
                    # waits out (the inline stall); STAGE is the
                    # on-chip slot<->scratch hop of a tile move, which
                    # never pays the off-chip link
                    t0 = time.perf_counter()
                    site[...] = args[0]
                    if link is not None and kind != _STEP_STAGE:
                        time.sleep(link.transfer_s(site.nbytes))
                    inline_stall_s += time.perf_counter() - t0
                    continue
                if kind == _STEP_DIRECT:
                    fn(args, attrs, node_params, site)
                elif kind == _STEP_COPY:
                    value = fn(args, attrs, node_params)
                    if tuple(value.shape) != shape:
                        raise ExecutionError(
                            f"kernel produced shape {value.shape} for "
                            f"{name!r}, spec says {shape}"
                        )
                    site[...] = value
                else:  # _STEP_INPUT
                    if name not in feeds:
                        raise ExecutionError(
                            f"missing feed for input {name!r}"
                        )
                    value = np.asarray(feeds[name], dtype=_EXEC_DTYPE)
                    if tuple(value.shape) != shape:
                        raise ExecutionError(
                            f"feed {name!r} has shape {value.shape}, "
                            f"expected {shape}"
                        )
                    site[...] = value
                if name in want:
                    snapshots[name] = site.copy()
            if engine is not None and plan.total_jobs:
                # end-of-run drain: writebacks due past the last step
                # must land before the caller (or the next run, or a
                # fresh-scrub realloc) reads the spill region
                engine_wait_s += engine.wait(base + plan.total_jobs)
        except BaseException:
            if engine is not None:
                engine.quiesce()
            raise

        self.runs += 1
        n_eff = 1 if n == _UNBATCHED else n
        hidden_s = 0.0
        if engine is not None:
            hidden_s = max(0.0, (engine.busy_s - busy0) - engine_wait_s)
        self.last_stats = PlanExecutionStats(
            steps=len(plan.steps),
            arena_bytes=self.plan.arena_bytes,
            measured_peak_bytes=plan.measured_peak_bytes,
            arena_reused=reused,
            direct_writes=plan.direct_writes,
            copy_writes=plan.copy_writes,
            batch=n_eff,
            capacity_bytes=(
                self.spill.capacity_bytes if self.spill is not None else None
            ),
            spilled_buffers=len(self._spilled),
            spill_fetches=plan.spill_fetches * n_eff,
            spill_writebacks=plan.spill_writebacks * n_eff,
            spill_bytes_in=plan.spill_bytes_in * n_eff,
            spill_bytes_out=plan.spill_bytes_out * n_eff,
            spill_accesses=plan.spill_accesses * n_eff,
            spill_stall_s=inline_stall_s + engine_wait_s,
            spill_hidden_s=hidden_s,
            prefetch_lead=(
                self._prefetch.lead_steps if self._prefetch is not None else 0
            ),
            tile_bytes=self._tile_bytes,
        )
        return {w: snapshots[w] for w in wanted}

    def shadow_check(self):
        """Byte-bounds replay of this executor's compiled step tables.

        Delegates to :func:`repro.analysis.shadow.shadow_check`: every
        pinned plan (single-sample, and batched when ``batch_size > 1``)
        is walked row by row — views bounds-checked against the
        declared regions, reads proven covered by earlier writes, and
        transfer-engine rows modelled for races — without executing a
        kernel. Returns an
        :class:`~repro.analysis.diagnostics.AnalysisReport`.
        """
        from repro.analysis.shadow import shadow_check

        return shadow_check(self)

    def traffic_report(self) -> TrafficReport:
        """Off-chip traffic of the most recent run, in the Fig 11
        simulator's units (:class:`~repro.memsim.hierarchy.TrafficReport`).

        Unlike the offline simulator this reports *executed* movement:
        every counted byte was actually copied between the spill region
        and a staging slot by a fetch or writeback step. Without a
        spill plan (or with a trivial one) the report is all-zero —
        the "SERENITY removes off-chip communication" case.
        """
        stats = self.last_stats
        if stats is None:
            raise ExecutionError(
                "no run to report traffic for; call run() or run_batch() first"
            )
        return TrafficReport(
            capacity_bytes=(
                stats.capacity_bytes
                if stats.capacity_bytes is not None
                else stats.arena_bytes
            ),
            policy=self.spill.policy if self.spill is not None else "resident",
            bytes_in=stats.spill_bytes_in,
            bytes_out=stats.spill_bytes_out,
            fetches=stats.spill_fetches,
            writebacks=stats.spill_writebacks,
            bypass_bytes=0,
            accesses=stats.spill_accesses,
            stall_s=stats.spill_stall_s,
            hidden_s=stats.spill_hidden_s,
            tile_bytes=stats.tile_bytes,
        )
