"""Buffer model and schedule simulation: hand-computed footprints.

These tests pin down the exact memory semantics everything else relies
on (paper Fig 6): alloc on execute, peak sampled post-alloc, free when
the last consumer retires, outputs persist, views and in-place nodes
share buffers.
"""

import pytest

from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import TensorSpec
from repro.scheduler.memory import BufferModel, peak_of, simulate_schedule
from repro.scheduler.schedule import Schedule


def _blob(name, inputs=(), channels=1, memory=None):
    return Node(
        name=name,
        op="input" if not inputs else "blob",
        inputs=tuple(inputs),
        output=TensorSpec((channels, 1, 1)),  # channels * 4 bytes
        memory=memory or MemorySemantics(),
    )


def _bytes(channels):
    return channels * 4


class TestChainFootprint:
    """a(1) -> b(2) -> c(3): peaks are transitions a+b then b+c."""

    @pytest.fixture
    def g(self):
        g = Graph()
        g.add(_blob("a", channels=1))
        g.add(_blob("b", ("a",), channels=2))
        g.add(_blob("c", ("b",), channels=3))
        return g

    def test_transients(self, g):
        tr = simulate_schedule(g, Schedule(("a", "b", "c")))
        assert list(tr.transients) == [_bytes(1), _bytes(3), _bytes(5)]

    def test_settled_footprints(self, g):
        tr = simulate_schedule(g, Schedule(("a", "b", "c")))
        # a freed once b executes; c persists as the graph output
        assert list(tr.footprints) == [_bytes(1), _bytes(2), _bytes(3)]

    def test_peak(self, g):
        tr = simulate_schedule(g, Schedule(("a", "b", "c")))
        assert tr.peak_bytes == _bytes(5)
        assert tr.peak_step == 2

    def test_final_bytes_is_output(self, g):
        tr = simulate_schedule(g, Schedule(("a", "b", "c")))
        assert tr.final_bytes == _bytes(3)


class TestOrderDependence:
    """x -> big(8), x -> small(1), both -> join(1): computing the big
    branch first lets it retire before the small one joins."""

    @pytest.fixture
    def g(self):
        g = Graph()
        g.add(_blob("x", channels=2))
        g.add(_blob("big", ("x",), channels=8))
        g.add(_blob("small", ("x",), channels=1))
        g.add(_blob("join", ("big", "small"), channels=1))
        return g

    def test_big_first(self, g):
        peak = peak_of(g, ("x", "big", "small", "join"))
        # x+big = 10 transient, then x+big+small = 11, join: big+small+join=10
        assert peak == _bytes(11)

    def test_small_first_is_same_here(self, g):
        peak = peak_of(g, ("x", "small", "big", "join"))
        assert peak == _bytes(11)

    def test_multi_consumer_keeps_tensor_alive(self):
        g = Graph()
        g.add(_blob("x", channels=4))
        g.add(_blob("u", ("x",), channels=1))
        g.add(_blob("v", ("x",), channels=1))
        tr = simulate_schedule(g, Schedule(("x", "u", "v")))
        # x must stay until v executes
        assert list(tr.transients) == [_bytes(4), _bytes(5), _bytes(6)]


class TestViewSemantics:
    """Partials writing into a shared view buffer cost the full buffer
    once (paper Fig 9: max(x_i) + y)."""

    @pytest.fixture
    def g(self):
        g = Graph()
        g.add(_blob("x", channels=1))
        g.add(_blob("p1", ("x",), channels=2))
        g.add(_blob("p2", ("x",), channels=3))
        g.add(
            _blob(
                "cat", ("p1", "p2"), channels=5, memory=MemorySemantics(view=True)
            )
        )
        g.add(_blob("head", ("cat",), channels=1))
        return g

    def test_shared_buffer_counted_once(self, g):
        model = BufferModel.of(g)
        idx = model.index
        assert model.buffer_of[idx.index["p1"]] == model.buffer_of[idx.index["cat"]]
        assert model.buffer_of[idx.index["p2"]] == model.buffer_of[idx.index["cat"]]

    def test_buffer_sized_as_concat_output(self, g):
        model = BufferModel.of(g)
        b = model.buffer_of[model.index.index["cat"]]
        assert model.buf_size[b] == _bytes(5)

    def test_full_buffer_allocated_at_first_partial(self, g):
        tr = simulate_schedule(g, Schedule(("x", "p1", "p2", "cat", "head")))
        # step p1: x(1) + full view buffer (5) = 6
        assert tr.transients[1] == _bytes(6)

    def test_view_node_itself_allocates_nothing(self, g):
        tr = simulate_schedule(g, Schedule(("x", "p1", "p2", "cat", "head")))
        assert tr.transients[3] == tr.footprints[2]

    def test_inputs_not_freed_until_view_consumed(self, g):
        tr = simulate_schedule(g, Schedule(("x", "p1", "p2", "cat", "head")))
        # after head: view buffer freed, head persists
        assert tr.footprints[-1] == _bytes(1)

    def test_partial_view_attr(self):
        g = Graph()
        g.add(_blob("x", channels=1))
        g.add(_blob("a", ("x",), channels=2))
        g.add(_blob("b", ("x",), channels=3))
        cat = _blob(
            "cat", ("a", "b"), channels=5, memory=MemorySemantics(view=True)
        )
        cat.attrs["view_inputs"] = (0,)  # only 'a' aliases
        g.add(cat)
        g.add(_blob("head", ("cat",), channels=1))
        model = BufferModel.of(g)
        i = model.index.index
        assert model.buffer_of[i["a"]] == model.buffer_of[i["cat"]]
        assert model.buffer_of[i["b"]] != model.buffer_of[i["cat"]]


class TestInplaceSemantics:
    def test_accumulator_chain_single_buffer(self):
        g = Graph()
        g.add(_blob("x", channels=1))
        g.add(_blob("acc0", ("x",), channels=4))
        g.add(
            _blob(
                "acc1",
                ("x", "acc0"),
                channels=4,
                memory=MemorySemantics(inplace_of=1),
            )
        )
        g.add(_blob("out", ("acc1",), channels=1))
        model = BufferModel.of(g)
        i = model.index.index
        assert model.buffer_of[i["acc0"]] == model.buffer_of[i["acc1"]]
        tr = simulate_schedule(g, Schedule(("x", "acc0", "acc1", "out")))
        # acc1 allocates nothing new: transient = x + acc buffer
        assert tr.transients[2] == _bytes(5)


class TestConsistency:
    def test_step_matches_footprint_of(self):
        from tests.conftest import random_dag_graph
        from repro.scheduler.topological import random_topological
        import random

        for seed in range(10):
            g = random_dag_graph(12, seed, with_views=True)
            model = BufferModel.of(g)
            idx = model.index
            rng = random.Random(seed)
            sched = random_topological(g, rng)
            mask, mu = 0, 0
            for name in sched:
                _, mu, mask = model.step(mask, mu, idx.index[name])
                assert mu == model.footprint_of(mask)

    def test_validation_rejects_bad_schedule(self, diamond_graph):
        from repro.exceptions import InvalidScheduleError

        names = list(reversed(diamond_graph.node_names))
        with pytest.raises(InvalidScheduleError):
            simulate_schedule(diamond_graph, Schedule(tuple(names)))

    def test_peak_of_accepts_iterables(self, chain_graph):
        order = tuple(chain_graph.node_names)
        assert peak_of(chain_graph, order) == peak_of(
            chain_graph, Schedule(order)
        )
