"""Numerical verification that graph rewriting is identity-preserving.

The rewritten graph's partial convolutions must compute with *slices of
the original weights* (that is the whole point — same math, different
order), so :func:`derive_rewritten_params` maps original parameters
through each partial node's ``source``/``in_slice`` provenance attrs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExecutionError
from repro.graph.graph import Graph
from repro.rewriting.rewriter import RewriteResult
from repro.runtime.executor import Executor, Params, init_params, random_feeds

__all__ = ["derive_rewritten_params", "EquivalenceReport", "verify_rewrite"]


def derive_rewritten_params(
    original: Graph, rewritten: Graph, params: Params
) -> Params:
    """Parameters for ``rewritten`` derived from ``original``'s.

    Unchanged nodes keep their entries; ``partial_conv2d`` takes the
    input-channel slice ``W[:, lo:hi]`` of its source convolution (bias
    rides with the first partial); ``partial_depthwise_conv2d`` takes the
    kernel slice ``W[lo:hi]`` (bias slice scaled by the multiplier).
    """
    out: Params = {}
    for node in rewritten:
        if node.op == "partial_conv2d":
            src = node.attrs["source"]
            lo, hi = node.attrs["in_slice"]
            source = params[src]
            entry = {"weight": source["weight"][:, lo:hi]}
            if node.attrs.get("owns_bias", False) and "bias" in source:
                entry["bias"] = source["bias"]
            out[node.name] = entry
        elif node.op == "partial_depthwise_conv2d":
            src = node.attrs["source"]
            lo, hi = node.attrs["in_slice"]
            mult = int(node.attrs.get("multiplier", 1))
            source = params[src]
            entry = {"weight": source["weight"][lo:hi]}
            if "bias" in source:
                entry["bias"] = source["bias"][lo * mult : hi * mult]
            out[node.name] = entry
        elif node.name in params:
            out[node.name] = params[node.name]
    return out


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of comparing original vs rewritten outputs."""

    equivalent: bool
    max_abs_error: float
    compared_outputs: tuple[tuple[str, str], ...]

    def __bool__(self) -> bool:
        return self.equivalent


def verify_rewrite(
    original: Graph,
    rewrite: RewriteResult,
    seed: int = 0,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> EquivalenceReport:
    """Run both graphs on shared random weights/inputs and compare every
    graph output (sinks paired through the rewrite's rename map)."""
    rewritten = rewrite.graph
    params = init_params(original, seed=seed)
    derived = derive_rewritten_params(original, rewritten, params)
    feeds = random_feeds(original, seed=seed)

    pairs = []
    for sink in original.sinks:
        counterpart = rewrite.renamed.get(sink, sink)
        if counterpart not in rewritten:
            raise ExecutionError(
                f"output {sink!r} has no counterpart in the rewritten graph"
            )
        pairs.append((sink, counterpart))

    ref = Executor(original, params=params).run(feeds, outputs=[p[0] for p in pairs])
    new = Executor(rewritten, params=derived).run(feeds, outputs=[p[1] for p in pairs])

    max_err = 0.0
    ok = True
    for a, b in pairs:
        err = float(np.max(np.abs(ref[a] - new[b]))) if ref[a].size else 0.0
        max_err = max(max_err, err)
        if not np.allclose(ref[a], new[b], rtol=rtol, atol=atol):
            ok = False
    return EquivalenceReport(
        equivalent=ok, max_abs_error=max_err, compared_outputs=tuple(pairs)
    )
