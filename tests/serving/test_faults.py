"""Self-healing serving under deterministic fault injection.

These are the acceptance tests for the supervision/retry/deadline
layer: every claim the serving stack makes about surviving a fault is
demonstrated here with a seeded :class:`~repro.serving.faults.FaultPlan`
— kills mid-load, kills inside the partial-response window, wedged
event loops, dropped and delayed responses, stalled engines, crash
loops — and the recovery counters are asserted against the injected
schedule.
"""

import pickle
import time

import numpy as np
import pytest

from repro.compiler import CompilationPipeline
from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    ShardFailedError,
)
from repro.runtime.executor import Executor, init_params, random_feeds
from repro.serving import (
    DelayResponse,
    DropResponse,
    FaultPlan,
    KillMidResponse,
    KillShard,
    ModelRegistry,
    ShardedScheduler,
    StallEngine,
    WedgeShard,
    run_load,
)

@pytest.fixture
def registry(chain_graph, diamond_graph):
    registry = ModelRegistry()
    pipeline = CompilationPipeline("greedy")
    registry.register(pipeline.compile(chain_graph), name="chain")
    registry.register(pipeline.compile(diamond_graph), name="diamond")
    return registry


def make_scheduler(registry, **overrides):
    """A 2-shard scheduler tuned for fast recovery in tests."""
    kwargs = dict(
        shards=2,
        workers=2,
        heartbeat_s=0.05,
        restart_backoff_s=0.02,
        restart_backoff_max_s=0.2,
        retry_backoff_s=0.02,
    )
    kwargs.update(overrides)
    return ShardedScheduler(registry, **kwargs)


def reference_outputs(registry, name, feeds, seed=0):
    graph = registry.get(name).graph
    ref = Executor(graph, params=init_params(graph, seed))
    return ref.run(feeds)


def shard_of(scheduler, model):
    return scheduler.routing[model]


def model_on_shard(scheduler, shard):
    """Some model routed to ``shard`` (tests pick their victim)."""
    for name, s in scheduler.routing.items():
        if s == shard:
            return name
    raise AssertionError(f"no model routed to shard {shard}")


def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFaultPlan:
    def test_seeded_schedule_is_deterministic(self):
        a = FaultPlan.kill_each_shard_once(4, seed=3)
        b = FaultPlan.kill_each_shard_once(4, seed=3)
        assert a == b
        assert len(a.faults) == 4 and a.kills() == 4
        # a different seed draws a different schedule (for these seeds)
        c = FaultPlan.kill_each_shard_once(4, seed=4)
        assert [f.at_request for f in a.faults] != [
            f.at_request for f in c.faults
        ]
        # pinned arrival overrides the draw
        d = FaultPlan.kill_each_shard_once(3, at_request=2, seed=9)
        assert [f.at_request for f in d.faults] == [2, 2, 2]

    def test_plans_pickle(self):
        plan = FaultPlan(
            faults=(
                KillShard(shard=0, at_request=3),
                WedgeShard(shard=1, stall_s=1.0),
                DropResponse(shard=0, at_request=2, incarnation=None),
            ),
            seed=5,
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_validation(self):
        with pytest.raises(ServingError, match="at_request"):
            FaultPlan(faults=(KillShard(shard=0, at_request=0),))
        with pytest.raises(ServingError, match="shard"):
            FaultPlan(faults=(KillShard(shard=-1),))
        with pytest.raises(ServingError, match="shards must be >= 1"):
            FaultPlan.kill_each_shard_once(0)

    def test_incarnation_filtering(self):
        plan = FaultPlan(
            faults=(
                KillShard(shard=0, incarnation=0),
                KillShard(shard=0, incarnation=None),
                KillShard(shard=1, incarnation=2),
            )
        )
        assert len(plan.for_shard(0, 0)) == 2  # first life: both fire
        assert len(plan.for_shard(0, 1)) == 1  # respawn: only the loop
        assert len(plan.for_shard(1, 0)) == 0
        assert len(plan.for_shard(1, 2)) == 1
        assert plan.injector(1, 0) is None  # hot path stays hook-free

    def test_crash_loop_fires_every_incarnation(self):
        plan = FaultPlan.crash_loop(1)
        for incarnation in (0, 1, 2, 7):
            assert len(plan.for_shard(1, incarnation)) == 1


class TestChaosAcceptance:
    """The ISSUE acceptance run: kill every shard once mid-load."""

    def test_kill_each_shard_once_full_recovery(self, registry):
        plan = FaultPlan.kill_each_shard_once(2, seed=7)
        report = run_load(
            registry,
            requests=40,
            clients=4,
            workers=2,
            shards=2,
            verify=True,
            deadline_s=30.0,
            retries=6,
            faults=plan,
        )
        # >= 99% complete bitwise-correct — here: all of them
        assert report.errors == 0
        assert report.verified is True
        # the scheduler returned to the full shard count
        assert all(s.alive for s in report.shard_stats)
        assert report.breaker_trips == 0
        # counters match the injected schedule exactly
        assert report.restarts == plan.kills() == 2
        assert report.shed == 0
        assert report.expired == 0
        # recovery implies work was actually retried and rerouted
        assert report.retries >= 1
        assert all(s.incarnation == 1 for s in report.shard_stats)

    def test_retried_requests_surface_attempts(self, registry):
        victim_model = None
        with make_scheduler(
            registry,
            retries=6,
            deadline_s=30.0,
            faults=FaultPlan(faults=(KillShard(shard=0, at_request=1),)),
        ) as server:
            victim_model = model_on_shard(server, 0)
            feeds = random_feeds(registry.get(victim_model).graph, seed=1)
            result = server.submit(victim_model, feeds).result(timeout=60)
            # the kill consumed the first attempt; success took more
            assert result.stats.attempts >= 2
            ref = reference_outputs(registry, victim_model, feeds)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])
            stats = server.stats()
            assert stats.retries >= 1
            assert stats.restarts == 1

    def test_crash_loop_trips_breaker_and_reroutes(self, registry):
        with make_scheduler(
            registry,
            retries=10,
            deadline_s=60.0,
            faults=FaultPlan.crash_loop(0),
            crashloop_window_s=30.0,
            crashloop_threshold=3,
        ) as server:
            victim_model = model_on_shard(server, 0)
            survivor = 1
            feeds = [
                random_feeds(registry.get(victim_model).graph, seed=i)
                for i in range(6)
            ]
            futures = [server.submit(victim_model, f) for f in feeds]
            # every request completes correctly despite the crash loop
            for f, fd in zip(futures, feeds):
                result = f.result(timeout=120)
                ref = reference_outputs(registry, victim_model, fd)
                for key, value in ref.items():
                    assert np.array_equal(value, result.outputs[key])
            assert wait_until(
                lambda: server._handles[0].failed
            ), "circuit breaker never tripped"
            # the victim's models rehashed onto the survivor; the
            # survivor's own models did not move (HRW minimal movement)
            assert server.routing[victim_model] == survivor
            assert all(s == survivor for s in server.routing.values())
            # breaker = threshold strikes; only the respawns in between
            # count as restarts
            stats = server.shard_stats(refresh=False)
            assert stats[0].failed and not stats[0].alive
            assert stats[1].alive and not stats[1].failed
            assert stats[0].restarts == 2  # 3 strikes - initial spawn
            # continued correct service after the breaker opened
            fd = random_feeds(registry.get(victim_model).graph, seed=99)
            result = server.submit(victim_model, fd).result(timeout=60)
            ref = reference_outputs(registry, victim_model, fd)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])


class TestWedgeDetection:
    def test_wedged_shard_is_killed_and_respawned(self, registry):
        plan = FaultPlan(
            faults=(WedgeShard(shard=0, at_request=1, stall_s=30.0),)
        )
        with make_scheduler(
            registry,
            retries=6,
            deadline_s=30.0,
            wedge_timeout_s=0.4,
            faults=plan,
        ) as server:
            victim_model = model_on_shard(server, 0)
            feeds = random_feeds(registry.get(victim_model).graph, seed=2)
            # the first request wedges the worker's event loop: only the
            # heartbeat supervisor can notice (the process stays alive)
            result = server.submit(victim_model, feeds).result(timeout=60)
            ref = reference_outputs(registry, victim_model, feeds)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])
            assert result.stats.attempts >= 2
            assert server.stats().restarts == 1


class TestResponseFaults:
    def test_dropped_response_fails_by_deadline(self, registry):
        plan = FaultPlan(faults=(DropResponse(shard=0, at_request=1),))
        with make_scheduler(
            registry, deadline_s=1.0, faults=plan
        ) as server:
            victim_model = model_on_shard(server, 0)
            feeds = random_feeds(registry.get(victim_model).graph, seed=3)
            future = server.submit(victim_model, feeds)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
            assert server.stats().expired == 1
            # the shard is healthy: the next request sails through
            result = server.submit(victim_model, feeds).result(timeout=30)
            ref = reference_outputs(registry, victim_model, feeds)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])

    def test_delayed_response_is_late_but_correct(self, registry):
        plan = FaultPlan(
            faults=(DelayResponse(shard=0, at_request=1, delay_s=0.3),)
        )
        with make_scheduler(registry, faults=plan) as server:
            victim_model = model_on_shard(server, 0)
            feeds = random_feeds(registry.get(victim_model).graph, seed=4)
            t0 = time.perf_counter()
            result = server.submit(victim_model, feeds).result(timeout=30)
            assert time.perf_counter() - t0 >= 0.3
            ref = reference_outputs(registry, victim_model, feeds)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])

    def test_engine_stall_sheds_queued_request_before_compute(
        self, registry
    ):
        plan = FaultPlan(
            faults=(StallEngine(shard=0, at_request=1, stall_s=0.6),)
        )
        with make_scheduler(
            registry, workers=1, faults=plan
        ) as server:
            victim_model = model_on_shard(server, 0)
            graph = registry.get(victim_model).graph
            # request 1 arms a 0.6s stall in the shard's engine; request
            # 2 queues behind it with a 0.15s deadline and must be shed
            # by the child *before compute*, not served late
            slow = server.submit(victim_model, random_feeds(graph, seed=5))
            fast = server.submit(
                victim_model,
                random_feeds(graph, seed=6),
                deadline_s=0.15,
            )
            with pytest.raises(DeadlineExceededError, match="deadline"):
                fast.result(timeout=30)
            assert slow.result(timeout=30) is not None
            assert server.stats().expired == 1


class TestPartialResponseCrashWindow:
    """SIGKILL between the response-ring payload write and the control
    pipe notify — the nastiest window: the payload exists in shared
    memory but the parent was never told (satellite: crash-window
    coverage)."""

    def test_parent_fails_exactly_the_affected_futures(self, registry):
        plan = FaultPlan(
            faults=(KillMidResponse(shard=0, at_request=1),)
        )
        with make_scheduler(
            registry, supervise=False, faults=plan
        ) as server:
            victim_model = model_on_shard(server, 0)
            other_model = model_on_shard(server, 1)
            victim_feeds = random_feeds(
                registry.get(victim_model).graph, seed=7
            )
            other_feeds = random_feeds(
                registry.get(other_model).graph, seed=8
            )
            doomed = server.submit(victim_model, victim_feeds)
            healthy = server.submit(other_model, other_feeds)
            # no hang, typed error, only the dying shard's future fails
            with pytest.raises(ServingError, match="died"):
                doomed.result(timeout=30)
            result = healthy.result(timeout=30)
            ref = reference_outputs(registry, other_model, other_feeds)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])

    def test_no_stale_slot_reuse_after_respawn(self, registry):
        plan = FaultPlan(
            faults=(KillMidResponse(shard=0, at_request=1),)
        )
        with make_scheduler(
            registry, retries=6, deadline_s=30.0, faults=plan
        ) as server:
            victim_model = model_on_shard(server, 0)
            graph = registry.get(victim_model).graph
            feeds = random_feeds(graph, seed=9)
            # with retries the crash-window request itself recovers
            result = server.submit(victim_model, feeds).result(timeout=60)
            assert result.stats.attempts >= 2
            ref = reference_outputs(registry, victim_model, feeds)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])
            assert wait_until(lambda: server._handles[0].alive)
            # drive more requests than the ring has slots through the
            # respawned shard: every slot in the fresh window must be
            # clean (a stale half-written slot would corrupt outputs)
            for i in range(server.ring_slots + 4):
                fd = random_feeds(graph, seed=100 + i)
                res = server.submit(victim_model, fd).result(timeout=30)
                ref = reference_outputs(registry, victim_model, fd)
                for key, value in ref.items():
                    assert np.array_equal(value, res.outputs[key])


class TestSubmitRobustness:
    def test_send_failure_releases_ring_slot(self, registry):
        """Regression (satellite): a control-pipe send that raises used
        to leak the already-acquired ring slot forever."""
        with make_scheduler(registry) as server:
            model = model_on_shard(server, 0)
            handle = server._handles[0]
            feeds = random_feeds(registry.get(model).graph, seed=10)

            def broken_send(msg):
                raise OSError("pipe torn mid-send")

            handle.send = broken_send
            try:
                for _ in range(handle.req_slots.slots + 2):
                    with pytest.raises(ShardFailedError, match="mid-send"):
                        server.submit(model, feeds)
                    # the leak showed up here: in-flight bookkeeping and
                    # the slot pool must both be fully unwound
                    assert handle.req_slots.in_use() == 0
                    assert handle.inflight == 0
            finally:
                del handle.send  # restore the class method
            result = server.submit(model, feeds).result(timeout=30)
            ref = reference_outputs(registry, model, feeds)
            for key, value in ref.items():
                assert np.array_equal(value, result.outputs[key])

    def test_inflight_cap_rejects_fast_and_typed(self, registry):
        plan = FaultPlan(
            faults=(StallEngine(shard=0, at_request=1, stall_s=0.5),)
        )
        with make_scheduler(
            registry, workers=1, max_inflight=1, faults=plan
        ) as server:
            model = model_on_shard(server, 0)
            graph = registry.get(model).graph
            slow = server.submit(model, random_feeds(graph, seed=11))
            t0 = time.perf_counter()
            with pytest.raises(OverloadedError, match="in-flight cap"):
                server.submit(model, random_feeds(graph, seed=12))
            # the rejection is immediate, not a blocked-then-timeout
            assert time.perf_counter() - t0 < 0.25
            assert slow.result(timeout=30) is not None
            assert server.stats().shed == 1
            assert server.shard_stats(refresh=False)[0].shed == 1

    def test_retries_zero_keeps_synchronous_dead_shard_error(
        self, registry
    ):
        with make_scheduler(registry, supervise=False) as server:
            model = model_on_shard(server, 0)
            handle = server._handles[0]
            import os
            import signal as _signal

            os.kill(handle.pid, _signal.SIGKILL)
            assert wait_until(lambda: not handle.alive)
            feeds = random_feeds(registry.get(model).graph, seed=13)
            with pytest.raises(ServingError, match="dead"):
                server.submit(model, feeds)


class TestLoadgenFaultPlumbing:
    def test_faults_require_multiple_shards(self, registry):
        with pytest.raises(ServingError, match="shards >= 2"):
            run_load(
                registry,
                requests=4,
                shards=1,
                faults=FaultPlan.kill_each_shard_once(1),
            )

    def test_report_carries_healing_counters(self, registry):
        report = run_load(
            registry,
            requests=8,
            clients=2,
            workers=2,
            shards=2,
            deadline_s=30.0,
            retries=4,
        )
        assert report.errors == 0
        assert report.restarts == 0
        assert report.retries == 0
        assert report.expired == 0
        assert report.shed == 0
        summary = report.summary()
        assert "self-healing" not in summary  # quiet when nothing healed
