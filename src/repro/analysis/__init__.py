"""Analysis utilities: static plan verification, schedule-space CDFs,
network stats, Pareto data."""

from repro.analysis.cdf import (
    SPARKFUN_EDGE_BYTES,
    ScheduleSpaceCDF,
    enumerate_peak_cdf,
    sample_peak_cdf,
)
from repro.analysis.complexity import (
    ComplexityReport,
    complexity_of,
    count_downsets,
    naive_recursion_size,
)
from repro.analysis.diagnostics import ERROR, WARNING, AnalysisReport, Diagnostic
from repro.analysis.mutations import MUTATION_CLASSES, Mutant, iter_mutants
from repro.analysis.netstats import NetworkStats, network_stats
from repro.analysis.pareto import (
    IMAGENET_POINTS,
    ModelPoint,
    dominance_summary,
    pareto_frontier,
)
from repro.analysis.quantization import cast_graph
from repro.analysis.reporting import format_kib, format_table, geomean, ratio_str
from repro.analysis.shadow import shadow_check
from repro.analysis.verifier import (
    VERIFY_LEVELS,
    analyze_artifact,
    analyze_model,
    analyze_plan,
)

__all__ = [
    "Diagnostic",
    "AnalysisReport",
    "ERROR",
    "WARNING",
    "VERIFY_LEVELS",
    "analyze_plan",
    "analyze_model",
    "analyze_artifact",
    "shadow_check",
    "Mutant",
    "MUTATION_CLASSES",
    "iter_mutants",
    "ScheduleSpaceCDF",
    "sample_peak_cdf",
    "enumerate_peak_cdf",
    "SPARKFUN_EDGE_BYTES",
    "NetworkStats",
    "network_stats",
    "ModelPoint",
    "IMAGENET_POINTS",
    "pareto_frontier",
    "dominance_summary",
    "geomean",
    "format_table",
    "format_kib",
    "ratio_str",
    "cast_graph",
    "ComplexityReport",
    "complexity_of",
    "count_downsets",
    "naive_recursion_size",
]
