"""Fig 2 / Fig 14: the accuracy-vs-compute landscape (quoted data) and
the irregular family's Pareto dominance."""

from repro.experiments import fig2_pareto


def test_fig2_pareto_landscape(benchmark, save_result):
    result = benchmark.pedantic(fig2_pareto.run, rounds=1, iterations=1)
    save_result("fig02_pareto", fig2_pareto.render(result))

    summary = result["summary"]
    # the paper's claim: irregular networks dominate the frontier
    assert summary["irregular_share"] >= 0.5
    assert summary["frontier_size"] >= 5
