"""The dataflow-graph IR that SERENITY schedules.

A :class:`Graph` is a DAG of :class:`~repro.graph.node.Node` objects. The
class enforces a strong invariant that the rest of the stack relies on:

* nodes may only be added after all of their producers, so **insertion
  order is always a valid topological order**. This mirrors how TFLite
  stores operators in flatbuffer order and is what the Kahn/"original
  order" baseline executes.

Graphs are cheap, pure-Python containers; the heavy analysis (bitset
reachability, partitioning) lives in :mod:`repro.graph.analysis` and
:mod:`repro.graph.partition`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.exceptions import GraphError
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import TensorSpec

__all__ = ["Graph", "INPUT_OP", "OUTPUT_OPS"]

INPUT_OP = "input"
#: ops that conventionally terminate a graph (kept for readability only;
#: any sink node is treated as a graph output by the memory model).
OUTPUT_OPS = frozenset({"output"})


class Graph:
    """An irregularly wired neural network as a typed DAG."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._succs: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, node: Node) -> Node:
        """Insert ``node``; all of its inputs must already be present."""
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        for src in node.inputs:
            if src not in self._nodes:
                raise GraphError(
                    f"node {node.name!r} consumes unknown producer {src!r} "
                    "(producers must be added before consumers)"
                )
        self._nodes[node.name] = node
        self._succs[node.name] = []
        for src in node.inputs:
            self._succs[src].append(node.name)
        return node

    def add_node(
        self,
        name: str,
        op: str,
        inputs: Iterable[str] = (),
        output: TensorSpec | tuple[int, ...] | None = None,
        attrs: dict[str, Any] | None = None,
        memory: MemorySemantics | None = None,
    ) -> Node:
        """Convenience wrapper building the :class:`Node` inline.

        ``output`` may be a plain shape tuple (float32 assumed); pass
        ``None`` only for ops whose shape the caller infers separately.
        """
        if output is None:
            raise GraphError(f"node {name!r} needs an output TensorSpec")
        if not isinstance(output, TensorSpec):
            output = TensorSpec(tuple(output))
        node = Node(
            name=name,
            op=op,
            inputs=tuple(inputs),
            output=output,
            attrs=dict(attrs or {}),
            memory=memory or MemorySemantics(),
        )
        return self.add(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    @property
    def node_names(self) -> list[str]:
        """Node names in insertion (= topological) order."""
        return list(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        """Nodes in insertion (= topological) order."""
        return list(self._nodes.values())

    def preds(self, name: str) -> tuple[str, ...]:
        """Producer names of ``name`` in argument order (may repeat)."""
        return self.node(name).inputs

    def succs(self, name: str) -> tuple[str, ...]:
        """Consumer names of ``name`` in insertion order (deduplicated)."""
        self.node(name)
        seen: dict[str, None] = {}
        for s in self._succs[name]:
            seen.setdefault(s, None)
        return tuple(seen)

    def out_degree(self, name: str) -> int:
        """Number of distinct consumers."""
        return len(self.succs(name))

    def in_degree(self, name: str) -> int:
        """Number of distinct producers."""
        return len(set(self.preds(name)))

    @property
    def sources(self) -> list[str]:
        """Nodes with no producers (graph inputs / weights-on-the-fly)."""
        return [n.name for n in self if not n.inputs]

    @property
    def sinks(self) -> list[str]:
        """Nodes with no consumers (graph outputs)."""
        return [name for name in self._nodes if not self._succs[name]]

    @property
    def input_nodes(self) -> list[str]:
        return [n.name for n in self if n.op == INPUT_OP]

    def edges(self) -> list[tuple[str, str]]:
        """Distinct (producer, consumer) pairs in deterministic order."""
        out: list[tuple[str, str]] = []
        for node in self:
            for src in dict.fromkeys(node.inputs):
                out.append((src, node.name))
        return out

    @property
    def num_edges(self) -> int:
        return len(self.edges())

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants beyond what :meth:`add` enforces.

        Raises :class:`GraphError` on: empty graph, dangling view/inplace
        semantics, or non-sink nodes with zero consumers that are not
        explicitly marked as outputs (dead nodes distort peak memory).
        """
        if not self._nodes:
            raise GraphError("graph is empty")
        for node in self:
            if node.memory.view and not node.inputs:
                raise GraphError(f"view node {node.name!r} has no inputs")
            if node.memory.inplace_of is not None:
                src = self.node(node.inputs[node.memory.inplace_of])
                if src.output.bytes < node.output.bytes:
                    raise GraphError(
                        f"in-place node {node.name!r} does not fit in its "
                        f"target buffer ({src.output.bytes} < {node.output.bytes})"
                    )

    def is_topological(self, order: Iterable[str]) -> bool:
        """Whether ``order`` is a permutation of the nodes that respects
        every edge."""
        order = list(order)
        if sorted(order) != sorted(self._nodes):
            return False
        pos = {name: i for i, name in enumerate(order)}
        return all(pos[src] < pos[dst] for src, dst in self.edges())

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Graph":
        g = Graph(name or self.name)
        for node in self:
            g.add(node.replace())
        return g

    def induced_subgraph(
        self, names: Iterable[str], name: str = "subgraph"
    ) -> "Graph":
        """Induced subgraph; boundary producers become ``input`` stubs.

        A node whose producer falls outside ``names`` gets that producer
        replaced by a synthetic ``input`` node with the same tensor spec,
        so the subgraph is schedulable in isolation (this is exactly what
        the divide step of divide-and-conquer needs: the cut node's
        activation is live at the boundary).
        """
        keep = set(names)
        unknown = keep - set(self._nodes)
        if unknown:
            raise GraphError(f"unknown nodes in subgraph request: {sorted(unknown)}")
        sub = Graph(name)
        for node in self:  # insertion order keeps it topological
            if node.name not in keep:
                continue
            for src in node.inputs:
                if src not in keep and src not in sub:
                    spec = self.node(src).output
                    sub.add(
                        Node(name=src, op=INPUT_OP, inputs=(), output=spec)
                    )
                    keep.add(src)
            sub.add(node.replace())
        return sub

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (nodes keep their specs)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for node in self:
            g.add_node(node.name, op=node.op, output=node.output)
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------
    # aggregate statistics (delegated to the op registry)
    # ------------------------------------------------------------------
    def total_activation_bytes(self) -> int:
        """Sum of all activation tensors (upper bound on any footprint)."""
        return sum(n.output_bytes for n in self)

    def total_macs(self) -> int:
        from repro.ops import macs_of

        return sum(macs_of(self, n) for n in self)

    def total_weights(self) -> int:
        from repro.ops import weights_of

        return sum(weights_of(self, n) for n in self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._nodes) != set(other._nodes):
            return False
        for name, node in self._nodes.items():
            o = other._nodes[name]
            if (
                node.op != o.op
                or node.inputs != o.inputs
                or node.output != o.output
                or node.attrs != o.attrs
                or node.memory != o.memory
            ):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name!r}, nodes={len(self)}, edges={self.num_edges})"
