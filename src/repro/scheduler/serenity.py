"""SERENITY pipeline facade (paper Fig 4).

``identity graph rewriting -> divide-and-conquer -> DP + adaptive soft
budgeting``, returning a rich report with both the "sum of live
activations" peak (Fig 12(b)) and the arena-allocator peak (Fig 12(a) /
Fig 10's "+ Memory Allocator" series).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.scheduler.divide import DivideAndConquerResult, DivideAndConquerScheduler
from repro.scheduler.memory import MemoryTrace, simulate_schedule
from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import kahn_schedule

__all__ = ["SerenityConfig", "SerenityReport", "Serenity", "schedule_graph"]


@dataclass(frozen=True)
class SerenityConfig:
    """Pipeline switches, mirroring the paper's ablation axes.

    ``rewrite``            identity graph rewriting (Section 3.3)
    ``divide``             divide-and-conquer partitioning (Section 3.2)
    ``adaptive_budget``    Algorithm 2 around each DP run
    """

    rewrite: bool = True
    divide: bool = True
    adaptive_budget: bool = True
    max_states_per_step: int | None = 50_000
    step_timeout_s: float | None = None
    min_segment_nodes: int = 2
    max_probes: int = 24


@dataclass(frozen=True)
class SerenityReport:
    """Everything the experiments need about one compilation."""

    config: SerenityConfig
    graph: Graph
    #: graph actually scheduled (rewritten when config.rewrite)
    scheduled_graph: Graph
    schedule: Schedule
    #: optimal peak, sum-of-live-activations semantics (no allocator)
    peak_bytes: int
    #: peak arena bytes under the TFLite-style first-fit allocator
    arena_bytes: int
    #: baseline (Kahn on the *original* graph) peaks for convenience
    baseline_peak_bytes: int
    baseline_arena_bytes: int
    scheduling_time_s: float
    rewrite_count: int
    divide: DivideAndConquerResult | None = None
    #: True when the report was rebuilt from a persistent cache entry
    #: (schedule replayed; DP search statistics not available)
    from_cache: bool = False

    def search_stats(self) -> DivideAndConquerResult:
        """The DP search statistics, or a loud error explaining why not.

        Cache-rebuilt reports replay the schedule without re-running the
        search, so ``divide`` is ``None``; harnesses that need
        ``states_expanded`` must compile directly (or disable the cache)
        rather than read a silent zero.
        """
        if self.divide is None:
            from repro.exceptions import SchedulingError

            hint = (
                " (report was rebuilt from the schedule cache; compile "
                "directly or set REPRO_NO_CACHE=1 to get search statistics)"
                if self.from_cache
                else ""
            )
            raise SchedulingError(
                f"no search statistics for {self.graph.name!r}{hint}"
            )
        return self.divide

    @property
    def reduction_no_alloc(self) -> float:
        """Baseline/serenity peak ratio without the allocator."""
        return self.baseline_peak_bytes / self.peak_bytes

    @property
    def reduction_with_alloc(self) -> float:
        """Baseline/serenity ratio under the arena allocator — the
        quantity plotted in Fig 10."""
        return self.baseline_arena_bytes / self.arena_bytes

    def trace(self) -> MemoryTrace:
        """Footprint trace of the chosen schedule (Fig 12(b) series)."""
        return simulate_schedule(self.scheduled_graph, self.schedule, validate=False)


class Serenity:
    """End-to-end memory-aware compiler for irregularly wired networks.

    >>> from repro.models import swiftnet_cell_a
    >>> report = Serenity().compile(swiftnet_cell_a())
    >>> report.reduction_with_alloc > 1.0
    True
    """

    def __init__(self, config: SerenityConfig | None = None) -> None:
        self.config = config or SerenityConfig()

    def compile(self, graph: Graph) -> SerenityReport:
        from repro.allocator import arena_peak_bytes
        from repro.rewriting import rewrite_graph

        cfg = self.config
        t0 = time.perf_counter()

        scheduled_graph = graph
        rewrite_count = 0
        if cfg.rewrite:
            rewritten = rewrite_graph(graph)
            scheduled_graph = rewritten.graph
            rewrite_count = rewritten.applied

        dnc = DivideAndConquerScheduler(
            adaptive_budget=cfg.adaptive_budget,
            max_states_per_step=cfg.max_states_per_step,
            step_timeout_s=cfg.step_timeout_s,
            min_segment_nodes=cfg.min_segment_nodes if cfg.divide else 10**9,
            max_probes=cfg.max_probes,
        )
        result = dnc.schedule(scheduled_graph)
        elapsed = time.perf_counter() - t0

        baseline = kahn_schedule(graph)
        baseline_peak = simulate_schedule(graph, baseline, validate=False).peak_bytes

        return SerenityReport(
            config=cfg,
            graph=graph,
            scheduled_graph=scheduled_graph,
            schedule=result.schedule,
            peak_bytes=result.peak_bytes,
            arena_bytes=arena_peak_bytes(scheduled_graph, result.schedule),
            baseline_peak_bytes=baseline_peak,
            baseline_arena_bytes=arena_peak_bytes(graph, baseline),
            scheduling_time_s=elapsed,
            rewrite_count=rewrite_count,
            divide=result,
        )


def schedule_graph(graph: Graph, **config_kwargs) -> SerenityReport:
    """One-call compilation: ``schedule_graph(g, rewrite=False, ...)``."""
    return Serenity(SerenityConfig(**config_kwargs)).compile(graph)
