"""Pattern matching and the two rewrite rules' emitted structure."""


from repro.graph.builder import GraphBuilder
from repro.rewriting.patterns import concat_sole_consumer_matches
from repro.rewriting.rewriter import IdentityGraphRewriter, rewrite_graph
from repro.rewriting.rules import ChannelWisePartitioning, KernelWisePartitioning


class TestMatcher:
    def test_basic_match(self, concat_conv_graph):
        matches = concat_sole_consumer_matches(concat_conv_graph, "conv2d", "r")
        assert len(matches) == 1
        assert matches[0].anchor == "head"
        assert set(matches[0].removed) == {"cat", "head"}

    def test_multi_consumer_concat_not_matched(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 2, name="r")
        cat = b.concat([l, r], name="cat")
        b.conv2d(cat, 2, name="head")
        b.relu(cat, name="other_reader")
        assert concat_sole_consumer_matches(b.build(), "conv2d", "r") == []

    def test_single_input_concat_not_matched(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        cat = b.concat([l], name="cat")
        b.conv2d(cat, 2, name="head")
        assert concat_sole_consumer_matches(b.build(), "conv2d", "r") == []

    def test_repeated_operand_not_matched(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        cat = b.concat([l, l], name="cat")
        b.conv2d(cat, 2, name="head")
        assert concat_sole_consumer_matches(b.build(), "conv2d", "r") == []

    def test_view_concat_still_matches(self, concat_conv_graph):
        from repro.graph.transforms import mark_concat_views

        g = mark_concat_views(concat_conv_graph)
        assert len(concat_sole_consumer_matches(g, "conv2d", "r")) == 1

    def test_gather_concat_excluded(self, concat_depthwise_graph):
        # rewrite once; the emitted gather must not rematch
        res = rewrite_graph(concat_depthwise_graph)
        assert res.applied == 1
        again = KernelWisePartitioning().find(res.graph)
        assert again == []


class TestChannelWiseEmission:
    def test_structure(self, concat_conv_graph):
        res = IdentityGraphRewriter([ChannelWisePartitioning()]).rewrite_once(
            concat_conv_graph
        )
        g = res.graph
        parts = [n for n in g if n.op == "partial_conv2d"]
        assert len(parts) == 3  # one per concat operand
        # chained accumulation: first allocates, rest are in-place
        assert parts[0].memory.inplace_of is None
        assert all(p.memory.inplace_of == 1 for p in parts[1:])
        assert parts[0].attrs["owns_bias"] and not parts[1].attrs["owns_bias"]

    def test_channel_slices_partition_input(self, concat_conv_graph):
        res = IdentityGraphRewriter([ChannelWisePartitioning()]).rewrite_once(
            concat_conv_graph
        )
        slices = [
            n.attrs["in_slice"]
            for n in res.graph
            if n.op == "partial_conv2d"
        ]
        assert slices == [(0, 4), (4, 10), (10, 12)]

    def test_source_provenance(self, concat_conv_graph):
        res = IdentityGraphRewriter([ChannelWisePartitioning()]).rewrite_once(
            concat_conv_graph
        )
        assert all(
            n.attrs["source"] == "head"
            for n in res.graph
            if n.op == "partial_conv2d"
        )

    def test_consumers_rerouted(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 4, 4))
        l = b.conv2d(x, 2, name="l")
        r = b.conv2d(x, 2, name="r")
        cat = b.concat([l, r], name="cat")
        h = b.conv2d(cat, 3, name="head")
        b.relu(h, name="after")
        res = rewrite_graph(b.build())
        after = res.graph.node("after")
        assert after.inputs == (res.renamed["head"],)

    def test_output_shape_preserved(self, concat_conv_graph):
        res = rewrite_graph(concat_conv_graph)
        old = concat_conv_graph.node("head").output
        new = res.graph.node(res.renamed["head"]).output
        assert old == new


class TestKernelWiseEmission:
    def test_structure(self, concat_depthwise_graph):
        res = rewrite_graph(concat_depthwise_graph)
        g = res.graph
        parts = [n for n in g if n.op == "partial_depthwise_conv2d"]
        assert len(parts) == 2
        gather = g.node(res.renamed["head"])
        assert gather.op == "concat"
        assert gather.memory.view
        assert gather.attrs.get("gather") is True

    def test_multiplier_carried(self, concat_depthwise_graph):
        res = rewrite_graph(concat_depthwise_graph)
        parts = [
            n for n in res.graph if n.op == "partial_depthwise_conv2d"
        ]
        assert all(p.attrs["multiplier"] == 2 for p in parts)

    def test_gather_shape_matches_original(self, concat_depthwise_graph):
        res = rewrite_graph(concat_depthwise_graph)
        old = concat_depthwise_graph.node("head").output
        assert res.graph.node(res.renamed["head"]).output == old


class TestRewriter:
    def test_no_match_returns_same_graph(self, diamond_graph):
        res = rewrite_graph(diamond_graph)
        assert not res.changed
        assert res.graph is diamond_graph

    def test_node_count_growth(self, concat_conv_graph):
        res = rewrite_graph(concat_conv_graph)
        # k=3 channel-wise: +3 partials -2 removed = +1
        assert len(res.graph) == len(concat_conv_graph) + 1

    def test_by_rule_counts(self, concat_conv_graph, concat_depthwise_graph):
        r1 = rewrite_graph(concat_conv_graph)
        r2 = rewrite_graph(concat_depthwise_graph)
        assert r1.by_rule == {"channel_wise_partitioning": 1}
        assert r2.by_rule == {"kernel_wise_partitioning": 1}

    def test_both_patterns_one_pass(self):
        b = GraphBuilder("both")
        x = b.input("x", (4, 8, 8))
        l = b.conv2d(x, 4, name="l")
        r = b.conv2d(x, 4, name="r")
        c1 = b.concat([l, r], name="c1")
        m = b.conv2d(c1, 6, name="m")  # channel-wise site
        p = b.conv2d(m, 4, name="p")
        q = b.conv2d(m, 4, name="q")
        c2 = b.concat([p, q], name="c2")
        b.depthwise_conv2d(c2, kernel=3, name="dw")  # kernel-wise site
        res = rewrite_graph(b.build())
        assert res.applied == 2
        assert set(res.by_rule) == {
            "channel_wise_partitioning",
            "kernel_wise_partitioning",
        }

    def test_result_graph_validates(self, concat_conv_graph):
        rewrite_graph(concat_conv_graph).graph.validate()

    def test_fixed_point_terminates(self, concat_conv_graph):
        res = rewrite_graph(concat_conv_graph, until_fixed_point=True)
        assert res.applied >= 1

    def test_peak_not_worse_after_rewrite(self, concat_conv_graph):
        from repro.graph.transforms import mark_concat_views
        from repro.scheduler.dp import dp_schedule

        g = mark_concat_views(concat_conv_graph)
        before = dp_schedule(g).peak_bytes
        after = dp_schedule(rewrite_graph(g).graph).peak_bytes
        assert after <= before
