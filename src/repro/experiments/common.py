"""Shared experiment infrastructure.

Compiling a suite cell with SERENITY is the expensive step every figure
needs, so results are memoised per (cell, configuration) for the
lifetime of the process — the benchmark suite reuses one compilation
across Fig 10/11/12/15 instead of re-scheduling per figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.models.suite import CellSpec, suite_cells
from repro.scheduler.serenity import Serenity, SerenityConfig, SerenityReport

__all__ = ["compiled", "clear_cache", "default_config", "CellRun", "suite_runs"]

#: deterministic state cap used across all experiments (the stand-in for
#: the paper's per-step wall-clock allowance T)
DEFAULT_MAX_STATES = 50_000

_CACHE: dict[tuple[str, bool], SerenityReport] = {}


def default_config(rewrite: bool) -> SerenityConfig:
    return SerenityConfig(rewrite=rewrite, max_states_per_step=DEFAULT_MAX_STATES)


def compiled(spec: CellSpec, rewrite: bool) -> SerenityReport:
    """SERENITY compilation of ``spec`` (cached per process)."""
    key = (spec.key, rewrite)
    if key not in _CACHE:
        _CACHE[key] = Serenity(default_config(rewrite)).compile(spec.factory())
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


@dataclass(frozen=True)
class CellRun:
    """Both pipeline variants for one cell."""

    spec: CellSpec
    dp: SerenityReport  # rewrite=False
    gr: SerenityReport  # rewrite=True

    @property
    def graph(self) -> Graph:
        return self.dp.graph


def suite_runs(keys: list[str] | None = None) -> list[CellRun]:
    """Compile the whole suite (or a subset) in both variants."""
    cells = suite_cells()
    if keys is not None:
        cells = [c for c in cells if c.key in set(keys)]
    return [
        CellRun(spec=c, dp=compiled(c, rewrite=False), gr=compiled(c, rewrite=True))
        for c in cells
    ]
