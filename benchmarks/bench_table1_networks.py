"""Table 1: specification of the evaluated networks (measured cells vs
the paper's whole-network figures)."""

from repro.experiments import table1_networks


def test_table1_network_specs(benchmark, save_result):
    rows = benchmark.pedantic(table1_networks.run, rounds=1, iterations=1)
    save_result("table1_networks", table1_networks.render(rows))

    by_net = {r.network: r for r in rows}
    assert set(by_net) == {
        "DARTS",
        "SwiftNet",
        "RandWire-CIFAR10",
        "RandWire-CIFAR100",
    }
    # SwiftNet is the full 62-node stacked network
    assert by_net["SwiftNet"].measured.nodes == 62
    # every measured cell-set is non-trivial but below the paper's
    # whole-network MACs (cells < networks)
    for r in rows:
        assert 0 < r.measured.macs_m < r.paper_macs_m
    # CIFAR100 RandWire outweighs CIFAR10 (paper: 160M vs 111M MACs)
    assert (
        by_net["RandWire-CIFAR100"].measured.macs
        > by_net["RandWire-CIFAR10"].measured.macs
    )
