"""Adaptive soft budgeting (paper Algorithm 2, Fig 8).

A meta binary-search around the DP scheduler. The *hard budget*
``tau_max`` is the peak of Kahn's O(|V|+|E|) schedule — a feasible upper
bound, so any ``tau >= tau_max`` is pointless to probe. The *soft
budget* ``tau`` is then searched:

* ``'timeout'`` (a DP search step blew its state/time allowance — too
  little pruning) → halve ``tau``;
* ``'no solution'`` (every path was pruned — ``tau`` fell below the
  optimum ``mu*``) → move ``tau`` back up halfway toward the last
  not-infeasible value;
* ``'solution'`` → done: the schedule is optimal, because pruning at
  ``tau >= mu*`` never removes *all* optimal paths.

The number of explored schedules grows monotonically with ``tau``
(Fig 8(b)), which is what makes the bisection sound. On top of the
paper's scheme we track an explicit infeasible lower bound so repeated
"no solution" probes cannot oscillate, and we guarantee termination with
a final unpruned fallback run at ``tau_max`` if the probe allowance is
exhausted (in practice the search converges in a handful of probes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.exceptions import BudgetSearchError, NoSolutionError, StepTimeoutError
from repro.graph.graph import Graph
from repro.scheduler.dp import DPResult, DPScheduler
from repro.scheduler.memory import BufferModel, simulate_schedule
from repro.scheduler.schedule import Schedule
from repro.scheduler.topological import kahn_schedule

__all__ = ["AdaptiveSoftBudgetScheduler", "BudgetProbe", "BudgetSearchResult"]


@dataclass(frozen=True)
class BudgetProbe:
    """One DP invocation inside the meta-search."""

    tau: int
    outcome: str  # 'solution' | 'no solution' | 'timeout'
    wall_time_s: float
    states_expanded: int = 0


@dataclass(frozen=True)
class BudgetSearchResult:
    """Final schedule plus the meta-search trajectory."""

    result: DPResult
    hard_budget: int
    probes: tuple[BudgetProbe, ...]

    @property
    def schedule(self) -> Schedule:
        return self.result.schedule

    @property
    def peak_bytes(self) -> int:
        return self.result.peak_bytes

    @property
    def total_wall_time_s(self) -> float:
        return sum(p.wall_time_s for p in self.probes)


@dataclass
class AdaptiveSoftBudgetScheduler:
    """Algorithm 2 driver around :class:`DPScheduler`.

    ``max_states_per_step`` is the per-step allowance whose overrun
    constitutes a 'timeout' (deterministic stand-in for the paper's
    hyperparameter ``T``; use ``step_timeout_s`` for true wall-clock).
    """

    max_states_per_step: int | None = 50_000
    step_timeout_s: float | None = None
    max_probes: int = 24
    preallocated: tuple[str, ...] = ()

    def schedule(
        self, graph: Graph, model: BufferModel | None = None
    ) -> BudgetSearchResult:
        model = model or BufferModel.of(graph)

        kahn = kahn_schedule(graph)
        # The Kahn schedule starts from scratch; when a prefix is
        # preallocated its order must lead the schedule for simulation.
        if self.preallocated:
            rest = [n for n in kahn.order if n not in set(self.preallocated)]
            kahn = Schedule(tuple(self.preallocated) + tuple(rest), graph.name)
        tau_max = simulate_schedule(graph, kahn, model=model).peak_bytes

        probes: list[BudgetProbe] = []
        tau_old = tau_max
        tau = tau_max
        infeasible_lo = -1  # largest tau known to yield 'no solution'

        for _ in range(self.max_probes):
            runner = DPScheduler(
                budget=tau,
                max_states_per_step=self.max_states_per_step,
                step_timeout_s=self.step_timeout_s,
                preallocated=self.preallocated,
            )
            t0 = time.perf_counter()
            try:
                result = runner.schedule(graph, model=model)
            except StepTimeoutError:
                probes.append(
                    BudgetProbe(tau, "timeout", time.perf_counter() - t0)
                )
                tau_old, tau = tau, tau // 2
            except NoSolutionError:
                probes.append(
                    BudgetProbe(tau, "no solution", time.perf_counter() - t0)
                )
                infeasible_lo = max(infeasible_lo, tau)
                tau_old, tau = tau, (tau + tau_old) // 2
            else:
                probes.append(
                    BudgetProbe(
                        tau,
                        "solution",
                        time.perf_counter() - t0,
                        result.states_expanded,
                    )
                )
                return BudgetSearchResult(
                    result=result, hard_budget=tau_max, probes=tuple(probes)
                )
            # keep the probe strictly above the known-infeasible floor and
            # strictly below repeats
            tau = max(tau, infeasible_lo + 1)
            if probes and tau == probes[-1].tau:
                tau = min(tau + max(1, (tau_max - tau) // 2), tau_max)
            if tau >= tau_max and probes[-1].outcome == "timeout":
                break  # pruning cannot help; fall through to fallback

        # Fallback: guaranteed-feasible unpruned run at the hard budget.
        t0 = time.perf_counter()
        try:
            result = DPScheduler(
                budget=tau_max, preallocated=self.preallocated
            ).schedule(graph, model=model)
        except (NoSolutionError, StepTimeoutError) as exc:  # pragma: no cover
            raise BudgetSearchError(
                f"budget search failed to converge after {len(probes)} probes"
            ) from exc
        probes.append(
            BudgetProbe(
                tau_max, "solution", time.perf_counter() - t0, result.states_expanded
            )
        )
        return BudgetSearchResult(
            result=result, hard_budget=tau_max, probes=tuple(probes)
        )
