"""Extension rewrite rules: concat flattening and identity elimination."""


from repro.graph.builder import GraphBuilder
from repro.rewriting.extra_rules import (
    EXTRA_RULES,
    ConcatFlattening,
    IdentityElimination,
)
from repro.rewriting.rewriter import IdentityGraphRewriter
from repro.rewriting.rules import DEFAULT_RULES
from repro.runtime.verify import verify_rewrite


def _nested_concat_graph():
    b = GraphBuilder("nested")
    x = b.input("x", (2, 6, 6))
    a = b.conv2d(x, 2, name="a")
    c = b.conv2d(x, 3, name="c")
    d = b.conv2d(x, 4, name="d")
    inner = b.concat([a, c], name="inner")
    outer = b.concat([inner, d], name="outer")
    b.conv2d(outer, 5, kernel=3, name="head")
    return b.build()


class TestConcatFlattening:
    def test_flattens_one_level(self):
        g = _nested_concat_graph()
        res = IdentityGraphRewriter([ConcatFlattening()]).rewrite_once(g)
        assert res.applied == 1
        flat = res.graph.node(res.renamed["outer"])
        assert flat.op == "concat"
        assert flat.inputs == ("a", "c", "d")
        assert flat.output == g.node("outer").output

    def test_numerically_identical(self):
        g = _nested_concat_graph()
        res = IdentityGraphRewriter([ConcatFlattening()]).rewrite(g)
        assert verify_rewrite(g, res).equivalent

    def test_enables_channel_wise_partitioning(self):
        """Flattening first lets the paper's rule see all three branches
        instead of two operands (one of them a concat)."""
        g = _nested_concat_graph()
        combined = IdentityGraphRewriter(EXTRA_RULES + DEFAULT_RULES)
        res = combined.rewrite(g, until_fixed_point=True)
        parts = [n for n in res.graph if n.op == "partial_conv2d"]
        assert len(parts) == 3
        assert verify_rewrite(g, res).equivalent

    def test_inner_with_other_reader_not_flattened(self):
        b = GraphBuilder("keep")
        x = b.input("x", (2, 6, 6))
        a = b.conv2d(x, 2, name="a")
        c = b.conv2d(x, 3, name="c")
        inner = b.concat([a, c], name="inner")
        b.relu(inner, name="other")
        d = b.conv2d(x, 4, name="d")
        b.concat([inner, d], name="outer")
        assert ConcatFlattening().find(b.build()) == []

    def test_deeply_nested_fixed_point(self):
        b = GraphBuilder("deep")
        x = b.input("x", (2, 6, 6))
        cur = b.conv2d(x, 2, name="leaf0")
        for i in range(3):
            nxt = b.conv2d(x, 2, name=f"leaf{i + 1}")
            cur = b.concat([cur, nxt], name=f"cat{i}")
        b.relu(cur, name="head")
        g = b.build()
        res = IdentityGraphRewriter([ConcatFlattening()]).rewrite(
            g, until_fixed_point=True
        )
        final = res.graph.node(res.renamed["cat2"])
        assert len(final.inputs) == 4
        assert verify_rewrite(g, res).equivalent


class TestIdentityElimination:
    def test_removes_pass_through(self):
        b = GraphBuilder("ident")
        x = b.input("x", (2, 4, 4))
        i = b.identity(x, name="skip")
        b.conv2d(i, 2, name="head")
        g = b.build()
        res = IdentityGraphRewriter([IdentityElimination()]).rewrite_once(g)
        assert "skip" not in res.graph
        assert res.graph.node("head").inputs == ("x",)

    def test_sink_identity_kept(self):
        b = GraphBuilder("sink")
        x = b.input("x", (2, 4, 4))
        b.identity(x, name="out")
        g = b.build()
        res = IdentityGraphRewriter([IdentityElimination()]).rewrite_once(g)
        assert "out" in res.graph

    def test_chain_of_identities(self):
        b = GraphBuilder("chain")
        x = b.input("x", (2, 4, 4))
        i1 = b.identity(x, name="i1")
        i2 = b.identity(i1, name="i2")
        b.conv2d(i2, 2, name="head")
        g = b.build()
        res = IdentityGraphRewriter([IdentityElimination()]).rewrite(
            g, until_fixed_point=True
        )
        assert res.graph.node("head").inputs == ("x",)

    def test_reduces_peak(self):
        from repro.scheduler.dp import dp_schedule

        b = GraphBuilder("peaky")
        x = b.input("x", (8, 8, 8))
        i = b.identity(x, name="copy")
        b.conv2d(i, 2, name="head")
        g = b.build()
        res = IdentityGraphRewriter([IdentityElimination()]).rewrite_once(g)
        assert dp_schedule(res.graph).peak_bytes < dp_schedule(g).peak_bytes

    def test_numerically_identical(self):
        b = GraphBuilder("ident-eq")
        x = b.input("x", (2, 4, 4))
        i = b.identity(x, name="skip")
        c = b.conv2d(i, 2, name="head")
        b.add(c, c, name="out")
        g = b.build()
        res = IdentityGraphRewriter([IdentityElimination()]).rewrite(g)
        assert verify_rewrite(g, res).equivalent
