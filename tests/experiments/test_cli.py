"""Command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "swiftnet-a" in out and "fig10" in out

    def test_schedule_cell(self, capsys):
        assert main(["schedule", "--cell", "swiftnet-c"]) == 0
        out = capsys.readouterr().out
        assert "SERENITY peak" in out and "reduction" in out

    def test_schedule_no_rewrite(self, capsys):
        assert main(["schedule", "--cell", "swiftnet-c", "--no-rewrite"]) == 0
        assert "rewrites applied        : 0" in capsys.readouterr().out

    def test_schedule_show_schedule(self, capsys):
        assert (
            main(["schedule", "--cell", "swiftnet-c", "--show-schedule"]) == 0
        )
        assert "schedule:" in capsys.readouterr().out

    def test_schedule_saved_graph(self, tmp_path, capsys, diamond_graph):
        from repro.graph.serialization import save_graph

        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        assert main(["schedule", "--graph", str(path)]) == 0
        assert "diamond" in capsys.readouterr().out

    def test_schedule_requires_source(self, capsys):
        assert main(["schedule"]) == 2

    def test_compile_batch_cells(self, tmp_path, capsys):
        assert (
            main(
                [
                    "compile-batch",
                    "--cell", "swiftnet-c",
                    "--cell", "swiftnet-b",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "portfolio compilation report" in out
        assert "swiftnet-c" in out and "swiftnet-b" in out
        assert "cache hits 0/12" in out

        # warm rerun through the same cache dir: every lookup hits
        assert (
            main(
                [
                    "compile-batch",
                    "--cell", "swiftnet-c",
                    "--cell", "swiftnet-b",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "cache hits 12/12 (100.0%)" in capsys.readouterr().out

    def test_compile_batch_device_and_no_cache(self, capsys):
        assert (
            main(
                [
                    "compile-batch",
                    "--cell", "swiftnet-c",
                    "--device", "SparkFun Edge",
                    "--no-cache",
                    "--strategies", "kahn,greedy,serenity",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "deployable on SparkFun Edge: 1/1" in out
        assert "serenity" in out  # cancelled by the budget race

    def test_compile_batch_saved_graph(self, tmp_path, capsys, diamond_graph):
        from repro.graph.serialization import save_graph

        path = tmp_path / "g.json"
        save_graph(diamond_graph, path)
        assert (
            main(["compile-batch", "--graph", str(path), "--no-cache"]) == 0
        )
        assert "diamond" in capsys.readouterr().out

    def test_list_includes_strategies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scheduling strategies" in out and "serenity-fast" in out

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
