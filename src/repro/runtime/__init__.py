"""NumPy reference runtime for executing and verifying graphs."""

from repro.runtime.executor import Executor, init_params, random_feeds
from repro.runtime.kernels import KERNELS, conv2d, depthwise_conv2d
from repro.runtime.verify import (
    EquivalenceReport,
    derive_rewritten_params,
    verify_rewrite,
)

__all__ = [
    "Executor",
    "init_params",
    "random_feeds",
    "KERNELS",
    "conv2d",
    "depthwise_conv2d",
    "EquivalenceReport",
    "derive_rewritten_params",
    "verify_rewrite",
]
