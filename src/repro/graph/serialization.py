"""Graph (de)serialisation: JSON documents and networkx round-trips.

The JSON schema is intentionally simple and versioned so saved benchmark
graphs remain loadable:

.. code-block:: json

    {"format": "repro-graph/1", "name": "...", "nodes": [
        {"name": "x", "op": "input", "inputs": [],
         "shape": [8, 16, 16], "dtype": "float32",
         "attrs": {...}, "memory": {"view": false, "inplace_of": null}}
    ]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.node import MemorySemantics, Node
from repro.graph.tensor import DType, TensorSpec

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT = "repro-graph/1"


def _attrs_to_json(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out


def _attrs_from_json(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, list):
            value = tuple(value)
        out[key] = value
    return out


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Serialise ``graph`` to a JSON-compatible dict."""
    return {
        "format": _FORMAT,
        "name": graph.name,
        "nodes": [
            {
                "name": n.name,
                "op": n.op,
                "inputs": list(n.inputs),
                "shape": list(n.output.shape),
                "dtype": n.output.dtype.value,
                "attrs": _attrs_to_json(n.attrs),
                "memory": {
                    "view": n.memory.view,
                    "inplace_of": n.memory.inplace_of,
                },
            }
            for n in graph
        ],
    }


def graph_from_dict(doc: dict[str, Any]) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    if doc.get("format") != _FORMAT:
        raise GraphError(f"unsupported graph format {doc.get('format')!r}")
    graph = Graph(doc.get("name", "graph"))
    for entry in doc["nodes"]:
        mem = entry.get("memory", {})
        graph.add(
            Node(
                name=entry["name"],
                op=entry["op"],
                inputs=tuple(entry["inputs"]),
                output=TensorSpec(
                    tuple(entry["shape"]), DType(entry.get("dtype", "float32"))
                ),
                attrs=_attrs_from_json(entry.get("attrs", {})),
                memory=MemorySemantics(
                    inplace_of=mem.get("inplace_of"), view=mem.get("view", False)
                ),
            )
        )
    return graph


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> Graph:
    """Load a graph saved by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
